"""Adversarial dictionary-thrash workload (control-plane churn driver).

The synthetic sensor workload is *friendly* to GD: a small, stable set of
operating points means the dictionary converges quickly and the control
plane goes quiet.  This workload is built to do the opposite — keep the
control plane installing and evicting for the whole trace:

* **heavy-tailed basis popularity** — a Zipf-like distribution over a
  basis population much larger than the identifier space, so the LRU
  tail churns continuously while a hot head stays compressible;
* **flash-crowd phase shifts** — every ``phase_chunks`` chunks the
  popularity ranking rotates by ``phase_shift`` positions, modelling a
  workload whose working set migrates (yesterday's cold bases become
  today's hot ones), which forces a burst of installs at each boundary.

Under a rate-limited or lossy control channel this is the workload that
exposes backpressure (``control.deferred`` / ``control.dropped``) and
recovery behaviour; under a perfect control plane it still measures how
much ratio the paper's LRU recycling gives up to churn.

The generator mirrors :class:`~repro.workloads.synthetic.SyntheticSensorWorkload`'s
interface exactly (``bases()`` / ``iter_chunks()`` / ``chunks()`` /
``trace()``), so every consumer — the replay harness, the topology
engine, the experiment matrix — can treat the two interchangeably.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.hamming import HammingCode
from repro.core.transform import GDTransform
from repro.exceptions import WorkloadError
from repro.workloads.traces import ChunkTrace

__all__ = ["DictionaryThrashWorkload"]


@dataclass(frozen=True)
class _BasisState:
    """One generatable basis: the basis, its codeword and a fixed prefix."""

    basis: int
    codeword: int
    prefix: int


class DictionaryThrashWorkload:
    """Generate chunks whose basis popularity is heavy-tailed and drifting.

    Parameters
    ----------
    num_chunks:
        Total chunks to generate.
    distinct_bases:
        Size of the basis population.  Choose it larger than the encoder's
        identifier space (``2**identifier_bits``) to force LRU recycling,
        or just large relative to the hot set to force steady churn.
    order:
        Hamming order ``m`` (8 in the paper → 256-bit chunks).
    zipf_exponent:
        Skew of the popularity distribution; higher values concentrate
        traffic on fewer bases (``1.1`` gives a realistic heavy tail).
    phase_chunks:
        Length of one popularity phase.  ``0`` disables phase shifts.
    phase_shift:
        How many rank positions the popularity order rotates at each phase
        boundary (the flash-crowd: a slice of the tail becomes the head).
    deviation_probability:
        Probability that a chunk deviates from its codeword by one bit.
    seed:
        RNG seed; generation is fully deterministic given the seed.
    """

    def __init__(
        self,
        num_chunks: int = 100_000,
        distinct_bases: int = 1_000,
        order: int = 8,
        zipf_exponent: float = 1.1,
        phase_chunks: int = 0,
        phase_shift: int = 0,
        deviation_probability: float = 0.5,
        seed: int = 2020,
    ):
        if num_chunks <= 0:
            raise WorkloadError(f"num_chunks must be positive, got {num_chunks}")
        if distinct_bases <= 0:
            raise WorkloadError(
                f"distinct_bases must be positive, got {distinct_bases}"
            )
        if zipf_exponent <= 0:
            raise WorkloadError(
                f"zipf_exponent must be positive, got {zipf_exponent}"
            )
        if phase_chunks < 0:
            raise WorkloadError(
                f"phase_chunks cannot be negative, got {phase_chunks}"
            )
        if phase_shift < 0:
            raise WorkloadError(
                f"phase_shift cannot be negative, got {phase_shift}"
            )
        if not 0.0 <= deviation_probability <= 1.0:
            raise WorkloadError(
                f"deviation_probability must be within [0, 1], "
                f"got {deviation_probability}"
            )
        self.num_chunks = num_chunks
        self.distinct_bases = distinct_bases
        self.order = order
        self.zipf_exponent = zipf_exponent
        self.phase_chunks = phase_chunks
        self.phase_shift = phase_shift
        self.deviation_probability = deviation_probability
        self.seed = seed
        self._transform = GDTransform(order=order)
        self._states: Optional[List[_BasisState]] = None
        self._weights: Optional[List[float]] = None

    # -- accessors ---------------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transform matching this workload's chunk size."""
        return self._transform

    @property
    def chunk_bytes(self) -> int:
        """Chunk size in bytes."""
        return self._transform.chunk_bytes

    @property
    def total_bytes(self) -> int:
        """Total payload volume the workload will generate."""
        return self.num_chunks * self.chunk_bytes

    # -- generation ----------------------------------------------------------------

    def _basis_states(self) -> List[_BasisState]:
        """The basis population, generated lazily and cached.

        Bases are drawn as random basis values directly (the thrash
        workload models churn, not telemetry realism), deduplicated until
        the population is full.
        """
        if self._states is not None:
            return self._states
        rng = random.Random(self.seed)
        code: HammingCode = self._transform.code
        prefix_bits = self._transform.prefix_bits
        states: List[_BasisState] = []
        seen = set()
        attempts = 0
        while len(states) < self.distinct_bases:
            attempts += 1
            if attempts > 100 * self.distinct_bases:
                raise WorkloadError(
                    "could not generate enough distinct bases; reduce "
                    "distinct_bases"
                )
            basis = rng.getrandbits(code.k)
            if basis in seen:
                continue
            seen.add(basis)
            states.append(
                _BasisState(
                    basis=basis,
                    codeword=code.encode(basis),
                    prefix=rng.getrandbits(prefix_bits) if prefix_bits else 0,
                )
            )
        self._states = states
        return states

    def _rank_weights(self) -> List[float]:
        """Zipf-like weight for each popularity rank (rank 0 is hottest)."""
        if self._weights is None:
            self._weights = [
                1.0 / (rank + 1.0) ** self.zipf_exponent
                for rank in range(self.distinct_bases)
            ]
        return self._weights

    def bases(self) -> List[int]:
        """The distinct bases of the workload (for static preloading)."""
        return [state.basis for state in self._basis_states()]

    def iter_chunks(self, num_chunks: Optional[int] = None) -> Iterator[bytes]:
        """Lazily generate chunks (deterministic for a given seed)."""
        count = self.num_chunks if num_chunks is None else num_chunks
        if count <= 0:
            raise WorkloadError(f"chunk count must be positive, got {count}")
        rng = random.Random(self.seed + 1)
        states = self._basis_states()
        weights = self._rank_weights()
        code = self._transform.code
        chunk_bytes = self.chunk_bytes
        n = code.n
        population = len(states)

        rotation = 0
        for index in range(count):
            if (
                self.phase_chunks
                and index
                and index % self.phase_chunks == 0
            ):
                # Flash crowd: the popularity ranking rotates, so a slice
                # of the cold tail suddenly becomes the hot head.
                rotation = (rotation + self.phase_shift) % population
            rank = rng.choices(range(population), weights=weights)[0]
            state = states[(rank + rotation) % population]
            body = state.codeword
            if rng.random() < self.deviation_probability:
                body ^= 1 << rng.randrange(n)
            value = (state.prefix << n) | body
            yield value.to_bytes(chunk_bytes, "big")

    def chunks(self, num_chunks: Optional[int] = None) -> List[bytes]:
        """Eagerly generate a list of chunks."""
        return list(self.iter_chunks(num_chunks))

    def trace(
        self, num_chunks: Optional[int] = None, name: str = "thrash"
    ) -> ChunkTrace:
        """Generate a :class:`ChunkTrace` of the thrash stream."""
        return ChunkTrace(self.chunks(num_chunks), name=name)
