"""Trace containers and replay helpers.

A *chunk trace* is the unit the evaluation replays: an ordered list of
fixed-size payload chunks (optionally timestamped).  Traces can be converted
to and from standard pcap files of Ethernet frames (the paper converts its
datasets "to a pcap trace of Ethernet packets containing the chunks as
payload"), summarised (volume, distinct bases), and replayed into a
:class:`~repro.zipline.deployment.ZipLineDeployment` at a configurable
packet rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.transform import GDTransform
from repro.exceptions import TraceError
from repro.net.ethernet import EthernetFrame
from repro.net.mac import MacAddress
from repro.net.pcap import PcapPacket, read_pcap, write_pcap
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

__all__ = ["TraceStats", "ChunkTrace"]

_DEFAULT_SOURCE = MacAddress("02:00:00:00:00:01")
_DEFAULT_DESTINATION = MacAddress("02:00:00:00:00:02")


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a chunk trace."""

    chunks: int
    chunk_bytes: int
    total_bytes: int
    distinct_chunks: int
    distinct_bases: Optional[int] = None

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "chunks": self.chunks,
            "chunk_bytes": self.chunk_bytes,
            "total_bytes": self.total_bytes,
            "distinct_chunks": self.distinct_chunks,
            "distinct_bases": self.distinct_bases,
        }


class ChunkTrace:
    """An ordered collection of equally sized payload chunks.

    The trace is the hand-off point between workload generators and the
    replay/compression machinery; it deliberately knows nothing about GD
    except through the optional helpers that take a transform.
    """

    def __init__(self, chunks: Sequence[bytes], name: str = "trace"):
        if not chunks:
            raise TraceError("a trace needs at least one chunk")
        first_len = len(chunks[0])
        if first_len == 0:
            raise TraceError("chunks cannot be empty")
        for index, chunk in enumerate(chunks):
            if len(chunk) != first_len:
                raise TraceError(
                    f"chunk {index} has {len(chunk)} bytes, expected {first_len}"
                )
        self._chunks = [bytes(chunk) for chunk in chunks]
        self._chunk_bytes = first_len
        self.name = name

    # -- basic accessors -----------------------------------------------------

    @property
    def chunks(self) -> List[bytes]:
        """The chunks (copy of the list, chunks themselves are immutable bytes)."""
        return list(self._chunks)

    @property
    def chunk_bytes(self) -> int:
        """Size of each chunk in bytes."""
        return self._chunk_bytes

    @property
    def total_bytes(self) -> int:
        """Total payload volume of the trace."""
        return len(self._chunks) * self._chunk_bytes

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._chunks)

    def __getitem__(self, index: int) -> bytes:
        return self._chunks[index]

    # -- analysis -----------------------------------------------------------------

    def stats(self, transform: Optional[GDTransform] = None) -> TraceStats:
        """Summary statistics, including distinct bases when a transform is given."""
        distinct_bases: Optional[int] = None
        if transform is not None:
            distinct_bases = len(self.distinct_bases(transform))
        return TraceStats(
            chunks=len(self._chunks),
            chunk_bytes=self._chunk_bytes,
            total_bytes=self.total_bytes,
            distinct_chunks=len(set(self._chunks)),
            distinct_bases=distinct_bases,
        )

    def distinct_bases(self, transform: GDTransform) -> List[int]:
        """The set of bases the trace's chunks map to (for static preloading)."""
        if transform.chunk_bytes != self._chunk_bytes:
            raise TraceError(
                f"transform expects {transform.chunk_bytes}-byte chunks, trace has "
                f"{self._chunk_bytes}-byte chunks"
            )
        seen: Dict[int, None] = {}
        for chunk in self._chunks:
            seen.setdefault(transform.split(chunk).basis, None)
        return list(seen)

    def concatenated(self) -> bytes:
        """All chunks joined into one byte string (gzip baseline input)."""
        return b"".join(self._chunks)

    def compression_ratio_with(self, codec: str, **parameters: object) -> float:
        """Compression ratio of this trace under a registry codec.

        The trace streams through ``registry.get(codec, **parameters)``
        chunk by chunk — the whole-trace concatenation is never built, so
        this scales to paper-sized (100 MB) traces.  The ratio is container
        bytes over payload bytes.
        """
        from repro import registry

        compressor = registry.get(codec, **parameters)
        compressed = sum(
            len(block) for block in compressor.compress_stream(iter(self._chunks))
        )
        total = self.total_bytes
        return compressed / total if total else 0.0

    def head(self, count: int) -> "ChunkTrace":
        """A new trace containing only the first ``count`` chunks."""
        if count <= 0:
            raise TraceError(f"count must be positive, got {count}")
        return ChunkTrace(self._chunks[:count], name=f"{self.name}[:{count}]")

    # -- pcap round trip --------------------------------------------------------------

    def to_frames(
        self,
        source: MacAddress = _DEFAULT_SOURCE,
        destination: MacAddress = _DEFAULT_DESTINATION,
    ) -> List[EthernetFrame]:
        """Wrap every chunk into a raw-chunk Ethernet frame."""
        return [
            EthernetFrame(
                destination=destination,
                source=source,
                ethertype=ETHERTYPE_RAW_CHUNK,
                payload=chunk,
            )
            for chunk in self._chunks
        ]

    def to_pcap(
        self,
        path: Union[str, Path],
        packet_rate: float = 1_000_000.0,
        source: MacAddress = _DEFAULT_SOURCE,
        destination: MacAddress = _DEFAULT_DESTINATION,
        nanosecond: bool = False,
    ) -> int:
        """Write the trace as a pcap of Ethernet frames; returns the packet count.

        ``nanosecond`` selects the nanosecond-resolution pcap variant, which
        preserves sub-microsecond inter-packet gaps (a 1 Mpkt/s replay rate
        quantises to nothing under the classic microsecond format).
        """
        if packet_rate <= 0:
            raise TraceError(f"packet rate must be positive, got {packet_rate}")
        interval = 1.0 / packet_rate
        packets = (
            PcapPacket(timestamp=index * interval, data=frame.to_bytes())
            for index, frame in enumerate(self.to_frames(source, destination))
        )
        return write_pcap(path, packets, nanosecond=nanosecond)

    @classmethod
    def from_pcap(
        cls, path: Union[str, Path], name: Optional[str] = None
    ) -> "ChunkTrace":
        """Load a trace from a pcap produced by :meth:`to_pcap`.

        Only frames carrying the raw-chunk EtherType are considered.
        """
        chunks: List[bytes] = []
        for packet in read_pcap(path):
            frame = EthernetFrame.from_bytes(packet.data)
            if frame.ethertype == ETHERTYPE_RAW_CHUNK:
                chunks.append(frame.payload)
        if not chunks:
            raise TraceError(f"pcap {path} contains no ZipLine chunk frames")
        return cls(chunks, name=name or str(path))

    # -- replay helpers -----------------------------------------------------------------

    def timestamps(self, packet_rate: float, start: float = 0.0) -> List[float]:
        """Constant-rate timestamps for every chunk."""
        if packet_rate <= 0:
            raise TraceError(f"packet rate must be positive, got {packet_rate}")
        interval = 1.0 / packet_rate
        return [start + index * interval for index in range(len(self._chunks))]

    def duration(self, packet_rate: float) -> float:
        """Wall-clock length of a constant-rate replay."""
        if packet_rate <= 0:
            raise TraceError(f"packet rate must be positive, got {packet_rate}")
        return len(self._chunks) / packet_rate
