"""Synthetic sensor-readout workload (the paper's synthetic dataset).

Section 7: "We engineered the synthetic dataset to be behaviorally close to
typical readouts from a sensor.  We generate 3,124,000 chunks of 256 bit
(matching the parameters we chose), which are then converted to a pcap trace
of Ethernet packets containing the chunks as payload."

A sensor produces readings that hover around a small number of operating
points with small perturbations — exactly the structure GD exploits: most
chunks are within one bit-flip of a small set of codewords, so they share a
small set of bases.  The generator below makes that structure explicit and
controllable:

* ``distinct_bases`` operating points are built as structured sensor frames
  (a device identifier, a status word, and 16-bit samples hovering around a
  per-device baseline), so the byte content is realistically low-entropy and
  a dictionary compressor (gzip) performs the way the paper reports;
* each chunk picks an operating point with temporal locality (sensor
  readings are bursty) and applies either no deviation or a single-bit
  deviation, both of which GD captures exactly;
* an optional ``noise_fraction`` of chunks are fully random, modelling
  occasional readings that do not share a basis with anything (these stay
  type 2 forever and bound the achievable ratio, like sensor glitches).

With the defaults the workload reproduces the Figure 3 synthetic bars:
≈ 1.03 for *no table*, ≈ 0.09 for *static table*, ≈ 0.11 for *dynamic
learning* at the paper's replay conditions, and ≈ 0.09 for gzip over the
concatenated payloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.hamming import HammingCode
from repro.core.transform import GDTransform
from repro.exceptions import WorkloadError
from repro.workloads.traces import ChunkTrace

__all__ = ["SyntheticSensorWorkload", "PAPER_SYNTHETIC_CHUNKS"]

#: Number of chunks in the paper's synthetic dataset (≈ 100 MB of payload).
PAPER_SYNTHETIC_CHUNKS = 3_124_000


@dataclass(frozen=True)
class _SensorState:
    """One operating point: a basis, its codeword, and a fixed prefix bit."""

    basis: int
    codeword: int
    prefix: int


class SyntheticSensorWorkload:
    """Generate sensor-like chunks clustered around a bounded set of bases.

    Parameters
    ----------
    num_chunks:
        Total chunks to generate (the paper uses 3,124,000; tests and the
        scaled benchmark use fewer).
    distinct_bases:
        Number of operating points.  Must not exceed the dictionary capacity
        if the static scenario is to hold every mapping.
    order:
        Hamming order ``m`` (8 in the paper → 256-bit chunks).
    locality:
        Probability that a chunk reuses the previous chunk's operating point
        (sensor readings are bursty); 0 draws independently every time.
    deviation_probability:
        Probability that a chunk deviates from its codeword by one bit
        (otherwise the codeword itself is sent).
    noise_fraction:
        Fraction of chunks that are completely random (share no basis).
    seed:
        RNG seed; generation is fully deterministic given the seed.
    """

    def __init__(
        self,
        num_chunks: int = 100_000,
        distinct_bases: int = 1_000,
        order: int = 8,
        locality: float = 0.92,
        deviation_probability: float = 0.5,
        noise_fraction: float = 0.0,
        num_devices: int = 8,
        sample_spread: int = 2,
        seed: int = 2020,
    ):
        if num_chunks <= 0:
            raise WorkloadError(f"num_chunks must be positive, got {num_chunks}")
        if distinct_bases <= 0:
            raise WorkloadError(f"distinct_bases must be positive, got {distinct_bases}")
        if not 0.0 <= locality <= 1.0:
            raise WorkloadError(f"locality must be within [0, 1], got {locality}")
        if not 0.0 <= deviation_probability <= 1.0:
            raise WorkloadError(
                f"deviation_probability must be within [0, 1], got {deviation_probability}"
            )
        if not 0.0 <= noise_fraction <= 1.0:
            raise WorkloadError(
                f"noise_fraction must be within [0, 1], got {noise_fraction}"
            )
        if num_devices <= 0:
            raise WorkloadError(f"num_devices must be positive, got {num_devices}")
        if sample_spread < 0:
            raise WorkloadError(f"sample_spread cannot be negative, got {sample_spread}")
        self.num_chunks = num_chunks
        self.distinct_bases = distinct_bases
        self.order = order
        self.locality = locality
        self.deviation_probability = deviation_probability
        self.noise_fraction = noise_fraction
        self.num_devices = num_devices
        self.sample_spread = sample_spread
        self.seed = seed
        self._transform = GDTransform(order=order)
        self._states: Optional[List[_SensorState]] = None

    # -- accessors ---------------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transform matching this workload's chunk size."""
        return self._transform

    @property
    def chunk_bytes(self) -> int:
        """Chunk size in bytes."""
        return self._transform.chunk_bytes

    @property
    def total_bytes(self) -> int:
        """Total payload volume the workload will generate."""
        return self.num_chunks * self.chunk_bytes

    # -- generation ----------------------------------------------------------------

    def _sensor_prototype(self, rng: random.Random, baselines: Sequence[int]) -> bytes:
        """One structured sensor frame of exactly ``chunk_bytes`` bytes.

        Layout: 2-byte device identifier, 2-byte status word, then 16-bit
        samples hovering around the device's baseline.  The structure keeps
        the byte-level entropy low (like real telemetry), which matters for
        the gzip comparison; GD only cares that the frames cluster.
        """
        device = rng.randrange(len(baselines))
        baseline = baselines[device]
        frame = bytearray()
        frame += device.to_bytes(2, "big")
        frame += (0xA000 | device).to_bytes(2, "big")
        while len(frame) < self.chunk_bytes:
            sample = baseline + rng.randint(-self.sample_spread, self.sample_spread)
            sample = max(0, min(0xFFFF, sample))
            frame += sample.to_bytes(2, "big")
        return bytes(frame[: self.chunk_bytes])

    def _sensor_states(self) -> List[_SensorState]:
        """The operating points, generated lazily and cached."""
        if self._states is not None:
            return self._states
        rng = random.Random(self.seed)
        code: HammingCode = self._transform.code
        baselines = [rng.randrange(1_000, 60_000) for _ in range(self.num_devices)]
        states: List[_SensorState] = []
        seen = set()
        attempts = 0
        while len(states) < self.distinct_bases:
            attempts += 1
            if attempts > 100 * self.distinct_bases:
                raise WorkloadError(
                    "could not generate enough distinct bases; reduce distinct_bases "
                    "or increase sample_spread / num_devices"
                )
            prototype = self._sensor_prototype(rng, baselines)
            parts = self._transform.split(prototype)
            if parts.basis in seen:
                continue
            seen.add(parts.basis)
            states.append(
                _SensorState(
                    basis=parts.basis,
                    codeword=code.encode(parts.basis),
                    prefix=parts.prefix,
                )
            )
        self._states = states
        return states

    def bases(self) -> List[int]:
        """The distinct bases of the workload (for static preloading)."""
        return [state.basis for state in self._sensor_states()]

    def iter_chunks(self, num_chunks: Optional[int] = None) -> Iterator[bytes]:
        """Lazily generate chunks (deterministic for a given seed)."""
        count = self.num_chunks if num_chunks is None else num_chunks
        if count <= 0:
            raise WorkloadError(f"chunk count must be positive, got {count}")
        rng = random.Random(self.seed + 1)
        states = self._sensor_states()
        code = self._transform.code
        chunk_bits = self._transform.chunk_bits
        chunk_bytes = self.chunk_bytes
        n = code.n

        current = rng.choice(states)
        for _ in range(count):
            if self.noise_fraction and rng.random() < self.noise_fraction:
                yield rng.getrandbits(chunk_bits).to_bytes(chunk_bytes, "big")
                continue
            if rng.random() >= self.locality:
                current = rng.choice(states)
            body = current.codeword
            if rng.random() < self.deviation_probability:
                body ^= 1 << rng.randrange(n)
            value = (current.prefix << n) | body
            yield value.to_bytes(chunk_bytes, "big")

    def chunks(self, num_chunks: Optional[int] = None) -> List[bytes]:
        """Eagerly generate a list of chunks."""
        return list(self.iter_chunks(num_chunks))

    def trace(self, num_chunks: Optional[int] = None, name: str = "synthetic") -> ChunkTrace:
        """Generate a :class:`ChunkTrace` (the Figure 3 input object)."""
        return ChunkTrace(self.chunks(num_chunks), name=name)

    # -- paper-scale helper -----------------------------------------------------------

    @classmethod
    def paper_configuration(
        cls, num_chunks: int = PAPER_SYNTHETIC_CHUNKS, seed: int = 2020
    ) -> "SyntheticSensorWorkload":
        """The configuration used to regenerate Figure 3 at paper scale.

        Defaults to the paper's 3,124,000 chunks; pass a smaller
        ``num_chunks`` for a scaled run (the benchmarks default to a scaled
        run and report the scaling factor).
        """
        return cls(
            num_chunks=num_chunks,
            distinct_bases=1_000,
            order=8,
            locality=0.92,
            deviation_probability=0.5,
            noise_fraction=0.0,
            seed=seed,
        )
