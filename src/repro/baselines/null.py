"""The no-op baseline: forward everything untouched.

Used as the "Original data" reference bar in Figure 3 and as the "No op"
configuration in Figures 4 and 5.  It exists as a class so every scenario in
the benchmark harness exposes the same interface (``run(chunks)`` returning
an object with ``compression_ratio``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["NullResult", "NullBaseline"]


@dataclass(frozen=True)
class NullResult:
    """Outcome of the no-op baseline (output equals input)."""

    chunks: int
    original_bytes: int

    @property
    def transmitted_bytes(self) -> int:
        """Bytes transmitted (identical to the input)."""
        return self.original_bytes

    @property
    def compression_ratio(self) -> float:
        """Always exactly 1.0 (unless the input is empty)."""
        return 1.0 if self.original_bytes else 0.0


class NullBaseline:
    """Forward chunks untouched and account their size."""

    def run(self, chunks: Iterable[bytes]) -> NullResult:
        """Account a chunk stream without transforming it."""
        count = 0
        total = 0
        for chunk in chunks:
            count += 1
            total += len(chunk)
        return NullResult(chunks=count, original_bytes=total)
