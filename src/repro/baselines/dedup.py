"""Classic (exact) deduplication baseline.

Generalized deduplication generalises classic deduplication: where GD maps
*similar* chunks (equal up to one bit flip) to the same basis, classic
deduplication only deduplicates *identical* chunks.  This baseline
implements the classic scheme with the same bounded identifier dictionary
and the same wire-format accounting as ZipLine, so the two can be compared
like-for-like in the ablation benchmarks — on noisy sensor data GD keeps
compressing while exact deduplication degrades, which is the core claim of
the GD line of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.core.bits import align_up
from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.exceptions import ReproError

__all__ = ["DedupResult", "ExactDedupBaseline"]


@dataclass(frozen=True)
class DedupResult:
    """Outcome of running the exact-deduplication baseline over a chunk stream."""

    chunks: int
    duplicate_chunks: int
    original_bytes: int
    transmitted_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Transmitted bytes over original bytes."""
        if self.original_bytes == 0:
            return 0.0
        return self.transmitted_bytes / self.original_bytes

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of chunks that were exact duplicates of a cached chunk."""
        if self.chunks == 0:
            return 0.0
        return self.duplicate_chunks / self.chunks


class ExactDedupBaseline:
    """Deduplicate identical chunks against a bounded dictionary.

    Parameters
    ----------
    identifier_bits:
        Identifier width; the dictionary holds ``2**identifier_bits`` chunks
        (kept equal to ZipLine's 15 bits for a fair comparison).
    eviction_policy:
        Dictionary replacement policy.
    alignment_padding_bits:
        Padding added to the not-deduplicated representation, mirroring the
        type-2 padding of ZipLine so byte accounting is comparable.
    eviction_seed:
        Seed for the dictionary's eviction randomness (``random`` policy
        only); pass one to make ablation runs reproducible.
    """

    def __init__(
        self,
        identifier_bits: int = 15,
        eviction_policy: "str | EvictionPolicy" = EvictionPolicy.LRU,
        alignment_padding_bits: int = 0,
        eviction_seed: Optional[int] = None,
    ):
        if identifier_bits <= 0:
            raise ReproError(f"identifier_bits must be positive, got {identifier_bits}")
        if alignment_padding_bits < 0:
            raise ReproError("alignment padding cannot be negative")
        self.identifier_bits = identifier_bits
        self.alignment_padding_bits = alignment_padding_bits
        self._dictionary = BasisDictionary(
            1 << identifier_bits, eviction_policy, seed=eviction_seed
        )

    @property
    def dictionary(self) -> BasisDictionary:
        """The underlying chunk dictionary."""
        return self._dictionary

    def _compressed_chunk_bytes(self) -> int:
        """Wire size of a deduplicated chunk reference (identifier only)."""
        return align_up(self.identifier_bits, 8) // 8

    def _uncompressed_chunk_bytes(self, chunk_bytes: int) -> int:
        """Wire size of a chunk that must travel in full."""
        return align_up(chunk_bytes * 8 + self.alignment_padding_bits, 8) // 8

    def run(self, chunks: Iterable[bytes], learn: bool = True) -> DedupResult:
        """Process a chunk stream and account the transmitted bytes.

        ``learn=False`` freezes the dictionary (static-table equivalent).
        """
        total = 0
        duplicates = 0
        original_bytes = 0
        transmitted = 0
        for chunk in chunks:
            total += 1
            original_bytes += len(chunk)
            identifier = self._dictionary.lookup(chunk)
            if identifier is not None:
                duplicates += 1
                transmitted += self._compressed_chunk_bytes()
            else:
                transmitted += self._uncompressed_chunk_bytes(len(chunk))
                if learn:
                    self._dictionary.insert(chunk)
        return DedupResult(
            chunks=total,
            duplicate_chunks=duplicates,
            original_bytes=original_bytes,
            transmitted_bytes=transmitted,
        )

    def preload(self, chunks: Sequence[bytes]) -> int:
        """Preload the dictionary with chunks (static scenario)."""
        return self._dictionary.preload(iter(chunks))

    def reset(self) -> None:
        """Clear the dictionary."""
        self._dictionary.clear()
