"""DEFLATE/gzip baseline (the "Gzip" bars of Figure 3).

The paper extracts all payloads into a regular file and compresses it with
the ``gzip`` command-line tool.  The reproduction uses Python's ``zlib`` —
the same DEFLATE algorithm and the same container framing as the gzip tool
(via ``gzip``-compatible headers) — so the comparison is algorithmically
identical.

Besides the whole-file mode the paper uses, a per-chunk mode is provided for
the ablation study: it shows why DEFLATE is a poor fit for small IoT-style
chunks (every 32-byte chunk pays the DEFLATE block overhead), which is one
of the motivations the paper gives for GD.
"""

from __future__ import annotations

import gzip
import zlib
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.exceptions import ReproError

__all__ = ["GzipResult", "GzipBaseline"]


@dataclass(frozen=True)
class GzipResult:
    """Outcome of compressing a dataset with the gzip baseline."""

    original_bytes: int
    compressed_bytes: int
    level: int
    per_chunk: bool

    @property
    def compression_ratio(self) -> float:
        """Compressed size over original size."""
        if self.original_bytes == 0:
            return 0.0
        return self.compressed_bytes / self.original_bytes

    @property
    def savings_percent(self) -> float:
        """Percentage of bytes saved."""
        return 100.0 * (1.0 - self.compression_ratio)


class GzipBaseline:
    """Compress chunk streams with DEFLATE, whole-file or per chunk.

    Parameters
    ----------
    level:
        DEFLATE compression level, 1–9 (the gzip tool default is 6).
    """

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ReproError(f"compression level must be in 1..9, got {level}")
        self.level = level

    # -- whole-file mode (what the paper measures) --------------------------------

    def compress_bytes(self, data: bytes) -> GzipResult:
        """Compress one contiguous byte string (gzip container, like the tool)."""
        compressed = gzip.compress(data, compresslevel=self.level)
        return GzipResult(
            original_bytes=len(data),
            compressed_bytes=len(compressed),
            level=self.level,
            per_chunk=False,
        )

    def compress_chunks(self, chunks: Sequence[bytes]) -> GzipResult:
        """Concatenate chunks into one file and compress it (paper's method)."""
        return self.compress_bytes(b"".join(chunks))

    def roundtrip_bytes(self, data: bytes) -> bytes:
        """Compress and decompress, returning the restored bytes."""
        return gzip.decompress(gzip.compress(data, compresslevel=self.level))

    # -- per-chunk mode (ablation) ----------------------------------------------------

    def compress_per_chunk(self, chunks: Iterable[bytes]) -> GzipResult:
        """Compress every chunk independently (raw DEFLATE, no container).

        This is what an online, per-packet DEFLATE deployment would have to
        do; the resulting ratio is typically above 1 for 32-byte chunks,
        illustrating the paper's point about small-data compression.
        """
        original = 0
        compressed = 0
        for chunk in chunks:
            original += len(chunk)
            compressor = zlib.compressobj(self.level, zlib.DEFLATED, -15)
            compressed += len(compressor.compress(chunk) + compressor.flush())
        return GzipResult(
            original_bytes=original,
            compressed_bytes=compressed,
            level=self.level,
            per_chunk=True,
        )

    # -- streaming helper ----------------------------------------------------------------

    def compressed_size_streaming(self, chunks: Iterable[bytes]) -> GzipResult:
        """Whole-stream compression without materialising the concatenation.

        Useful for paper-scale traces (100 MB) where building one bytes
        object per run would be wasteful.
        """
        compressor = zlib.compressobj(self.level, zlib.DEFLATED, 31)  # gzip container
        original = 0
        compressed = 0
        for chunk in chunks:
            original += len(chunk)
            compressed += len(compressor.compress(chunk))
        compressed += len(compressor.flush())
        return GzipResult(
            original_bytes=original,
            compressed_bytes=compressed,
            level=self.level,
            per_chunk=False,
        )
