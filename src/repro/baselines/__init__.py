"""Comparison baselines: gzip/DEFLATE, classic deduplication, no-op."""

from repro.baselines.dedup import DedupResult, ExactDedupBaseline
from repro.baselines.gzip_baseline import GzipBaseline, GzipResult
from repro.baselines.null import NullBaseline, NullResult

__all__ = [
    "DedupResult",
    "ExactDedupBaseline",
    "GzipBaseline",
    "GzipResult",
    "NullBaseline",
    "NullResult",
]
