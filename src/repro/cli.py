"""Command-line interface for the ZipLine reproduction.

Exposes the pieces a user reaches for most often without writing Python:

* ``compress`` / ``decompress`` — streaming file compression with any codec
  in the registry (GD with its self-describing ``GDZ1`` container, gzip,
  classic dedup, null), processed in bounded memory so file size does not
  matter; decompression detects the format from the file's magic;
* ``codecs`` — list the registered compressors;
* ``generate-trace`` — write a synthetic-sensor or DNS chunk trace as a pcap
  file ready to replay;
* ``replay`` — run a pcap trace through an emulated ZipLine topology
  (encoder → link(s) → decoder, with optional loss/reordering/queueing)
  and report compression ratio, latency percentiles and per-component
  counters; see :mod:`repro.replay`;
* ``topology`` — run an arbitrary topology graph (declarative JSON spec or
  a named preset such as the K-sender ``fan-in``) with N concurrent flows
  and per-flow reporting; see :mod:`repro.topology` and
  ``docs/topology.md``;
* ``experiment`` — expand a declarative scenario-matrix spec (JSON/TOML)
  into a cross-product of replay runs, execute them — optionally sharded
  across worker processes — and fold the reports into one aggregate table
  with per-axis group-bys and CSV/JSON export; see :mod:`repro.experiments`
  and ``docs/experiments.md``;
* ``trace`` — summarize the trace files the run commands record via their
  shared ``--trace-out`` / ``--events-out`` / ``--snapshot-interval``
  observability flags; see ``docs/observability.md``;
* ``bench`` — run any of the ``benchmarks/bench_*.py`` files in the CI's
  smoke mode (or ``--full``), or ``--profile`` named hot-path stages
  (encode, decode, transform, switch-encode, switch-decode) with cProfile;
  see ``docs/performance.md``;
* ``table1`` — print the reproduced Table 1;
* ``learning-delay`` — measure the dynamic-learning delay (the paper's
  1.77 ms experiment).

Invoke with ``repro ...`` (the console script), ``python -m repro ...``, or
look at ``repro.cli.main``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import obs, registry
from repro.analysis.reporting import format_table, save_results_json
from repro.analysis.statistics import summarize
from repro.core.engine import DEFAULT_BLOCK_SIZE, compress_file, decompress_file
from repro.core.polynomials import render_table_1
from repro.exceptions import ReproError
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.experiments import ExperimentSpec, MatrixRunner
from repro.replay import (
    PcapTraceSource,
    ReplayHarness,
    ReplayTopology,
    pacing_from_name,
    stream_distinct_bases,
)
from repro.workloads import DnsQueryWorkload, SyntheticSensorWorkload
from repro.zipline import DeploymentScenario, ZipLineDeployment

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZipLine reproduction: generalized deduplication tooling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser(
        "compress", help="stream-compress a file with a registered codec"
    )
    compress.add_argument("input", type=Path, help="file to compress")
    compress.add_argument("output", type=Path, help="compressed stream to write")
    compress.add_argument(
        "--codec",
        choices=registry.names(),
        default="gd",
        help="compressor from the registry (default: gd)",
    )
    compress.add_argument("--order", type=int, default=8, help="Hamming order m (default 8, gd only)")
    compress.add_argument(
        "--identifier-bits", type=int, default=15,
        help="identifier width t (default 15, gd/dedup)",
    )
    compress.add_argument(
        "--level", type=int, default=6, help="DEFLATE level 1-9 (default 6, gzip only)"
    )
    compress.add_argument(
        "--block-size", type=int, default=DEFAULT_BLOCK_SIZE,
        help=f"streaming read size in bytes (default {DEFAULT_BLOCK_SIZE})",
    )

    decompress = subparsers.add_parser(
        "decompress",
        help="decompress a stream back into a file (format detected from magic)",
    )
    decompress.add_argument("input", type=Path, help="compressed stream to read")
    decompress.add_argument("output", type=Path, help="file to write")
    decompress.add_argument(
        "--block-size", type=int, default=DEFAULT_BLOCK_SIZE,
        help=f"streaming read size in bytes (default {DEFAULT_BLOCK_SIZE})",
    )

    codecs = subparsers.add_parser(
        "codecs", help="list the registered compressors"
    )
    codecs.add_argument(
        "--backends", action="store_true",
        help="list the codec backends (pure/numpy/native) with availability "
             "and selection status instead of the compressors",
    )

    generate = subparsers.add_parser(
        "generate-trace", help="generate a chunk trace and write it as a pcap"
    )
    generate.add_argument(
        "dataset", choices=("synthetic", "dns"), help="which Figure 3 dataset to generate"
    )
    generate.add_argument("output", type=Path, help="pcap file to write")
    generate.add_argument("--chunks", type=int, default=10_000, help="number of chunks/queries")
    generate.add_argument("--bases", type=int, default=32, help="distinct bases (synthetic)")
    generate.add_argument("--names", type=int, default=300, help="distinct names (dns)")
    generate.add_argument("--seed", type=int, default=2020, help="generator seed")

    replay = subparsers.add_parser(
        "replay",
        help="replay a pcap trace through an emulated ZipLine topology",
        description=(
            "Stream a pcap trace through traffic source -> encoder switch -> "
            "emulated link(s) -> decoder switch -> sink, verify end-to-end "
            "payload integrity, and report compression ratio, latency "
            "percentiles and the full counter breakdown."
        ),
    )
    replay.add_argument(
        "input", type=Path, nargs="?", default=None,
        help="pcap trace to replay (alternative to --trace)",
    )
    replay.add_argument(
        "--trace", type=Path, default=None, help="pcap trace to replay"
    )
    replay.add_argument(
        "--topology",
        default="encoder-link-decoder",
        metavar="NAME",
        help="linear replay topology: "
             + ", ".join(topology.value for topology in ReplayTopology)
             + " (default: encoder-link-decoder; graph shapes live under "
             "'repro topology')",
    )
    replay.add_argument(
        "--hops", type=int, default=1,
        help="number of emulated links in series (default 1)",
    )
    replay.add_argument(
        "--scenario",
        choices=[scenario.value for scenario in DeploymentScenario],
        default="dynamic",
        help="dictionary scenario (default: dynamic)",
    )
    replay.add_argument(
        "--pacing",
        choices=("recorded", "rate", "back-to-back"),
        default="rate",
        help="injection pacing: as-recorded timestamps, fixed rate, or "
             "back-to-back (default: rate)",
    )
    replay.add_argument(
        "--packet-rate", type=float, default=1e6,
        help="replay rate in packets/s (pacing=rate; default 1e6)",
    )
    replay.add_argument(
        "--speedup", type=float, default=1.0,
        help="time-compression factor for pacing=recorded (default 1.0)",
    )
    replay.add_argument(
        "--bandwidth-gbps", type=float, default=100.0,
        help="emulated link bandwidth in Gbit/s (default 100)",
    )
    replay.add_argument(
        "--propagation-us", type=float, default=0.5,
        help="one-way propagation delay per hop in microseconds (default 0.5)",
    )
    replay.add_argument(
        "--queue-capacity", type=int, default=0,
        help="bounded link queue in frames, 0 = unbounded (default 0)",
    )
    replay.add_argument(
        "--loss", type=float, default=0.0,
        help="per-packet loss probability on each hop (default 0)",
    )
    replay.add_argument(
        "--reorder", type=float, default=0.0,
        help="per-packet reorder probability on each hop (default 0)",
    )
    replay.add_argument(
        "--seed", type=int, default=0, help="impairment RNG seed (default 0)"
    )
    replay.add_argument(
        "--counters", action="store_true",
        help="print the full per-component counter breakdown",
    )
    replay.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    _add_obs_arguments(replay)

    topology = subparsers.add_parser(
        "topology",
        help="run a topology graph with concurrent flows",
        description=(
            "Build a topology of hosts, ZipLine switches and emulated links "
            "-- from a declarative JSON spec (--spec) or a named preset "
            "(--preset) -- partition it into independent per-encoder shards, "
            "run them (across --workers N processes when N > 1, with "
            "byte-identical reports at any worker count), and report "
            "per-flow integrity, per-link counters and the aggregate "
            "compression ratio. See docs/topology.md."
        ),
    )
    topology.add_argument(
        "--spec", type=Path, default=None, help="topology spec (.json)"
    )
    topology.add_argument(
        "--preset", default=None, metavar="NAME",
        help="named topology preset (linear, fan-in, fan-in-stress, "
             "rack-fan-in, fault-storm, paper-testbed)",
    )
    topology.add_argument(
        "--senders", type=int, default=None,
        help="concurrent senders for the fan-in presets, per rack for "
             "rack-fan-in (default: the preset's own)",
    )
    topology.add_argument(
        "--racks", type=int, default=None,
        help="rack count for --preset rack-fan-in (default: the preset's own)",
    )
    topology.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sharded execution (default 1 = "
             "sequential; the report is byte-identical either way)",
    )
    topology.add_argument(
        "--metrics", choices=("exact", "streaming", "auto"), default="auto",
        help="latency metrics mode: exact keeps every sample, streaming "
             "uses fixed-size sketches (bounded memory), auto picks "
             "streaming at 256+ flows (default: auto)",
    )
    topology.add_argument(
        "--scenario",
        choices=[scenario.value for scenario in DeploymentScenario],
        default="dynamic",
        help="dictionary scenario for presets (default: dynamic)",
    )
    topology.add_argument(
        "--chunks", type=int, default=None,
        help="chunks per flow for presets (default: the preset's own)",
    )
    topology.add_argument(
        "--bases", type=int, default=None,
        help="distinct bases per flow for presets (default: the preset's own)",
    )
    topology.add_argument(
        "--seed", type=int, default=0, help="spec-level seed (default 0)"
    )
    topology.add_argument(
        "--control",
        choices=("direct", "in-network"),
        default=None,
        help="override how mapping installs reach the decoder: direct calls "
             "or in-network control messages over an emulated link",
    )
    topology.add_argument(
        "--control-rate", type=float, default=None, metavar="CMDS_PER_S",
        help="token-bucket pacing of the in-network control channel in "
             "commands per second (default: unlimited); excess installs "
             "are deferred and surface as control.* backpressure counters",
    )
    topology.add_argument(
        "--faults", default=None, metavar="JSON_OR_PATH",
        help="fault plan: inline JSON or a path to a JSON file with "
             "control_loss / control_reorder probabilities, scheduled "
             "decoder 'restarts' and encoder eviction 'storms' "
             "(see docs/control-plane.md)",
    )
    topology.add_argument(
        "--counters", action="store_true",
        help="print the full per-component counter breakdown",
    )
    topology.add_argument(
        "--quiet", action="store_true",
        help="suppress per-shard progress lines",
    )
    topology.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    _add_obs_arguments(topology)

    experiment = subparsers.add_parser(
        "experiment",
        help="run a scenario-matrix sweep from a declarative spec",
        description=(
            "Expand a JSON/TOML experiment spec (base parameters + swept "
            "axes) into the cross-product of replay scenarios, execute them "
            "-- sharded across worker processes when --workers > 1, with "
            "byte-identical reports either way -- and print the aggregate "
            "table. See docs/experiments.md for the spec format."
        ),
    )
    experiment.add_argument(
        "--spec", type=Path, required=True, help="experiment spec (.json or .toml)"
    )
    experiment.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sharded execution (default 1 = sequential)",
    )
    experiment.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the full result set (spec + every report) as JSON",
    )
    experiment.add_argument(
        "--csv", type=Path, default=None, metavar="PATH",
        help="write the per-scenario summary table as CSV",
    )
    experiment.add_argument(
        "--group-by", action="append", default=None, metavar="AXIS",
        help="print a mean +/- 95%% CI summary per value of AXIS (repeatable)",
    )
    experiment.add_argument(
        "--metric", default="compression_ratio",
        help="metric the group-by tables summarise (default: compression_ratio)",
    )
    experiment.add_argument(
        "--list", action="store_true",
        help="list the expanded scenarios without running them",
    )
    experiment.add_argument(
        "--quiet", action="store_true",
        help="suppress per-scenario progress lines",
    )
    _add_obs_arguments(experiment)

    trace = subparsers.add_parser(
        "trace",
        help="inspect recorded trace files",
        description=(
            "Work with the trace files 'repro replay/topology/experiment' "
            "write via --trace-out/--events-out. See docs/observability.md."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize",
        help="print per-stage span statistics (count, mean/p50/p99, slowest)",
    )
    trace_summarize.add_argument(
        "file", type=Path,
        help="trace file: --events-out JSON-lines or --trace-out Perfetto JSON",
    )
    trace_summarize.add_argument(
        "--top", type=int, default=5,
        help="slowest spans to list per stage (default 5)",
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the reproduction benchmarks (smoke mode by default)",
        description=(
            "Run benchmarks/bench_*.py from a source checkout without "
            "hand-typed PYTHONPATH incantations. Defaults to the scaled-down "
            "smoke mode CI uses (REPRO_BENCH_SMOKE=1); results land in "
            "benchmarks/results/. With --profile, instead profile the GD "
            "encode and decode hot paths with cProfile and print the top 25 "
            "functions by cumulative time."
        ),
    )
    bench.add_argument(
        "names", nargs="*", metavar="NAME",
        help="benchmarks to run, e.g. 'hotpath' or 'fig4_throughput' "
             "(default: all)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list available benchmarks and exit"
    )
    bench.add_argument(
        "--full", action="store_true",
        help="run at full scale instead of the smoke-mode default",
    )
    bench.add_argument(
        "--backend", action="append", default=None, metavar="NAME",
        help="restrict backend-aware benchmarks to these codec backends "
             "(repeatable; sets REPRO_BENCH_BACKENDS for the run); with "
             "--profile, run the profiled stages on this backend",
    )
    bench.add_argument(
        "--profile", nargs="*", default=None, metavar="STAGE",
        help="profile hot-path stages with cProfile instead of running "
             "benchmark files; stages: encode, decode, transform, "
             "transform-batch, parity-batch, crc-batch, encode-batch, "
             "decode-batch, switch-encode, switch-decode "
             "(bare --profile = encode decode)",
    )
    bench.add_argument(
        "--profile-chunks", type=int, default=20_000,
        help="chunks in the --profile workload (default 20000)",
    )

    subparsers.add_parser("table1", help="print the reproduced Table 1")

    learning = subparsers.add_parser(
        "learning-delay", help="measure the dynamic-learning delay (paper: 1.77 ms)"
    )
    learning.add_argument("--repetitions", type=int, default=10, help="number of runs")
    learning.add_argument("--packets", type=int, default=4000, help="packets per run")

    return parser


def _compressor_parameters(args: argparse.Namespace) -> dict:
    """Forward only the options the selected codec understands."""
    if args.codec == "gd":
        return {"order": args.order, "identifier_bits": args.identifier_bits}
    if args.codec == "dedup":
        return {"identifier_bits": args.identifier_bits}
    if args.codec == "gzip":
        return {"level": args.level}
    return {}


def _cmd_compress(args: argparse.Namespace) -> int:
    compressor = registry.get(args.codec, **_compressor_parameters(args))
    read, written = compress_file(
        compressor, args.input, args.output, block_size=args.block_size
    )
    ratio = written / read if read else 0.0
    print(
        f"{args.input} ({read:,} B) -> {args.output} ({written:,} B, "
        f"codec {args.codec}), container ratio {ratio:.3f}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as stream:
        header = stream.read(8)
    compressor = registry.get_for_header(header)
    _read, written = decompress_file(
        compressor, args.input, args.output, block_size=args.block_size
    )
    print(
        f"{args.input} -> {args.output} ({written:,} B restored, "
        f"codec {compressor.name})"
    )
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    if getattr(args, "backends", False):
        rows = [
            [
                status["name"],
                "yes" if status["available"] else "no",
                str(status["priority"]),
                "yes" if status["default"] else "",
                "yes" if status.get("crc_batch") else "no",
                status["detail"] or "",
            ]
            for status in registry.backend_status()
        ]
        print(
            format_table(
                ["backend", "available", "priority", "default", "crc batch",
                 "detail"],
                rows,
                title="codec backends (select with --backend/REPRO_GD_BACKEND)",
            )
        )
        return 0
    rows = [
        [name, registry.magic_for(name).hex() or "-"]
        for name in registry.names()
    ]
    print(format_table(["codec", "magic"], rows, title="registered compressors"))
    return 0


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        workload = SyntheticSensorWorkload(
            num_chunks=args.chunks, distinct_bases=args.bases, seed=args.seed
        )
        trace = workload.trace()
    else:
        workload = DnsQueryWorkload(
            num_queries=args.chunks, distinct_names=args.names, seed=args.seed
        )
        trace = workload.trace()
    count = trace.to_pcap(args.output)
    stats = trace.stats()
    print(
        f"wrote {count:,} chunk packets to {args.output} "
        f"({stats.total_bytes / 1e6:.2f} MB of payload, "
        f"{stats.distinct_chunks:,} distinct chunks)"
    )
    return 0


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the shared tracing flags on a run-style subcommand."""
    group = parser.add_argument_group(
        "observability", "packet-lifecycle tracing; see docs/observability.md"
    )
    group.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the run, one track per "
             "node/link (open at ui.perfetto.dev)",
    )
    group.add_argument(
        "--events-out", type=Path, default=None, metavar="PATH",
        help="write the raw trace event stream as JSON-lines",
    )
    group.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS",
        help="sample live metrics (compression ratio, queue depth, packet "
             "rate, dictionary occupancy) every N simulated seconds into "
             "the trace",
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return (
        args.trace_out is not None
        or args.events_out is not None
        or args.snapshot_interval is not None
    )


def _obs_enable(args: argparse.Namespace):
    """Install a recording tracer when the obs flags ask for one.

    Returns the tracer (so the caller can pull the recorded events out of
    its sink) or ``None`` when tracing stays disabled.  Must be called
    *before* the harness/engine is built: construction binds the tracer
    clock to the run's simulator.
    """
    if args.snapshot_interval is not None:
        if args.snapshot_interval <= 0:
            raise ReproError(
                f"--snapshot-interval must be positive, got {args.snapshot_interval}"
            )
        if args.trace_out is None and args.events_out is None:
            raise ReproError(
                "--snapshot-interval needs --trace-out or --events-out to "
                "receive the samples"
            )
    if args.trace_out is None and args.events_out is None:
        return None
    return obs.enable(snapshot_interval=args.snapshot_interval)


def _obs_write(args: argparse.Namespace, tracer) -> None:
    """Write the recorded events to whichever outputs were requested."""
    events = tracer.sink.events
    if args.events_out is not None:
        count = obs.write_events(events, str(args.events_out))
        print(f"trace events ({count:,} records) written to {args.events_out}")
    if args.trace_out is not None:
        count = obs.write_chrome_trace(events, str(args.trace_out))
        print(f"Perfetto trace ({count:,} records) written to {args.trace_out}")


def _cmd_replay(args: argparse.Namespace) -> int:
    if (args.input is None) == (args.trace is None):
        raise ReproError("give the trace exactly once: positionally or via --trace")
    trace_path = args.trace if args.trace is not None else args.input

    try:
        topology = ReplayTopology.from_name(args.topology)
    except ReproError as error:
        # from_name lists the valid linear topologies; add the pointer to
        # the graph-shaped ones.
        raise ReproError(
            f"{error} (graph topologies such as fan-in run via "
            "'repro topology --preset')"
        ) from None
    scenario = DeploymentScenario.from_name(args.scenario)
    static_bases = None
    if scenario is DeploymentScenario.STATIC:
        static_bases = stream_distinct_bases(trace_path)

    impairments = None
    if args.loss != 0 or args.reorder != 0:
        # ImpairmentModel validates the probabilities, so a negative typo
        # fails loudly instead of silently running an ideal link.
        impairments = ImpairmentModel(
            loss_probability=args.loss,
            reorder_probability=args.reorder,
            seed=args.seed,
        )
    tracer = _obs_enable(args)
    try:
        harness = ReplayHarness(
            topology=topology,
            scenario=scenario,
            static_bases=static_bases,
            hops=args.hops,
            bandwidth_bps=args.bandwidth_gbps * 1e9,
            propagation_delay=args.propagation_us * 1e-6,
            queue_capacity=args.queue_capacity or None,
            impairments=impairments,
            seed=args.seed,
        )
        pacing = pacing_from_name(
            args.pacing, packet_rate=args.packet_rate, speedup=args.speedup
        )
        report = harness.run(PcapTraceSource(trace_path), pacing)
    finally:
        if tracer is not None:
            obs.disable()
    print(report.render(include_counters=args.counters))
    if tracer is not None:
        _obs_write(args, tracer)
    if args.json is not None:
        save_results_json(args.json, report.as_dict())
        print(f"report written to {args.json}")
    if report.integrity is None:
        # No chunk-level integrity (e.g. decoder-only over a processed
        # trace) — but a decode that dropped packets on unknown identifiers
        # must not report success.
        unknown = report.metrics.counter("decoder.unknown_identifier")
        return 1 if unknown > 0 else 0
    # An impaired or queue-bounded link loses or reorders chunks by design;
    # those are counted failure modes.  Corruption is never acceptable.
    if impairments is None and not args.queue_capacity:
        return 0 if report.integrity.lossless_in_order else 1
    return 0 if report.integrity.intact else 1


#: ``--metrics auto`` switches to bounded streaming sketches at this many
#: flows.  The rule depends only on the spec — never on the worker count —
#: so it cannot break the byte-identity contract across ``--workers N``.
AUTO_STREAMING_FLOWS = 256


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.topology import (
        TOPOLOGY_PRESETS,
        TopologySpec,
        preset_topology,
        run_topology,
    )

    if (args.spec is None) == (args.preset is None):
        raise ReproError(
            "give the topology exactly once: --spec FILE or --preset NAME "
            f"(presets: {', '.join(sorted(TOPOLOGY_PRESETS))})"
        )
    if args.workers < 1:
        raise ReproError(
            f"--workers must be a positive integer, got {args.workers}"
        )
    if args.spec is not None:
        spec = TopologySpec.from_file(args.spec)
    else:
        preset_kwargs = dict(scenario=args.scenario, seed=args.seed)
        for key in ("chunks", "bases"):
            value = getattr(args, key)
            if value is not None:
                preset_kwargs[key] = value
        if args.senders is not None:
            if args.preset not in ("fan-in", "fan-in-stress", "rack-fan-in"):
                raise ReproError(
                    f"--senders only applies to the fan-in presets, "
                    f"not {args.preset!r}"
                )
            preset_kwargs["senders"] = args.senders
        if args.racks is not None:
            if args.preset != "rack-fan-in":
                raise ReproError(
                    f"--racks only applies to --preset rack-fan-in, "
                    f"not {args.preset!r}"
                )
            preset_kwargs["racks"] = args.racks
        spec = preset_topology(args.preset, **preset_kwargs)
    if args.control is not None:
        spec.control = args.control
    if args.control_rate is not None or args.faults is not None:
        from repro.topology.faults import load_fault_plan, validate_spec_faults

        if args.control_rate is not None:
            if args.control_rate <= 0:
                raise ReproError(
                    f"--control-rate must be positive, got {args.control_rate}"
                )
            spec.control_rate = args.control_rate
        if args.faults is not None:
            spec.faults = load_fault_plan(args.faults)
        # Overrides bypass TopologySpec.__init__; re-check the cross-field
        # constraints so a typo'd node name fails before the run.
        validate_spec_faults(spec)
    if args.metrics == "auto":
        metrics_mode = (
            "streaming" if len(spec.flows) >= AUTO_STREAMING_FLOWS else "exact"
        )
    else:
        metrics_mode = args.metrics
    progress = None if args.quiet else print
    tracer = _obs_enable(args)
    try:
        report = run_topology(
            spec,
            workers=args.workers,
            metrics_mode=metrics_mode,
            progress=progress,
        )
    finally:
        if tracer is not None:
            obs.disable()
    print(report.render(include_counters=args.counters))
    if tracer is not None:
        _obs_write(args, tracer)
    if args.json is not None:
        save_results_json(args.json, report.as_dict())
        print(f"report written to {args.json}")
    # Same contract as `repro replay`: corruption is never acceptable, and
    # on a network with no configured impairments (loss, reordering, queue
    # bounds) every chunk must come back in order — silent total loss on an
    # ideal network must not exit 0.  Unresolved identifiers on any decoder
    # mean dropped traffic and fail the run either way.
    if report.integrity is not None:
        impaired = (
            any(
                link.loss or link.reorder or link.queue_capacity
                for link in spec.links
            )
            or (spec.faults is not None and spec.faults.active)
            or spec.control_rate is not None
        )
        verdict = (
            report.integrity.intact
            if impaired
            else report.integrity.lossless_in_order
        )
        if not verdict:
            return 1
        return 0
    unknown = sum(
        value
        for name, value in report.metrics.as_dict()["counters"].items()
        if name.endswith(".unknown_identifier")
    )
    if unknown > 0:
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_file(args.spec)
    if args.list:
        rows = [
            [scenario.index, scenario.scenario_id, scenario.seed]
            for scenario in spec.expand()
        ]
        print(
            format_table(
                ["#", "scenario", "seed"],
                rows,
                title=f"experiment {spec.name}: {spec.matrix_size} scenarios",
            )
        )
        return 0

    # Reject group-by typos before the (possibly long) sweep runs, not
    # after, so a bad flag cannot discard hours of results.
    for axis in args.group_by or ():
        if axis not in spec.axes:
            raise ReproError(
                f"unknown group-by axis {axis!r}; "
                f"axes: {', '.join(spec.axis_names) or 'none'}"
            )

    total = spec.matrix_size
    progress = None
    if not args.quiet:
        def progress(result) -> None:
            ratio = result.metric("compression_ratio")
            rendered = "n/a" if ratio is None else f"{ratio:.4f}"
            print(f"  done {result.scenario_id} (ratio {rendered})", flush=True)

    # Scenario worker processes cannot stream their in-memory traces back
    # to the parent, so experiment tracing is sequential-only.
    if _obs_requested(args) and args.workers > 1:
        raise ReproError(
            "--trace-out/--events-out/--snapshot-interval require "
            f"--workers 1 for 'repro experiment', got --workers {args.workers}"
        )

    print(f"experiment {spec.name}: {total} scenarios, {args.workers} worker(s)")
    tracer = _obs_enable(args)
    try:
        result = MatrixRunner(spec, workers=args.workers).run(progress=progress)
    finally:
        if tracer is not None:
            obs.disable()
    # Persist exports before rendering: a bad --metric must not discard a
    # finished sweep.
    if args.csv is not None:
        result.to_csv(args.csv)
    if args.out is not None:
        result.to_json(args.out)
    print()
    print(result.render(group_axes=args.group_by, metric=args.metric))
    if args.csv is not None:
        print(f"summary CSV written to {args.csv}")
    if args.out is not None:
        print(f"full report written to {args.out}")
    if tracer is not None:
        _obs_write(args, tracer)
    if not result.intact:
        print("error: at least one scenario delivered corrupted chunks", file=sys.stderr)
        return 1
    return 0


def _benchmarks_dir() -> Path:
    """The benchmarks/ tree of the source checkout this package runs from."""
    candidate = Path(__file__).resolve().parents[2] / "benchmarks"
    if not candidate.is_dir():
        raise ReproError(
            "benchmarks directory not found; 'repro bench' needs a source "
            "checkout (pip install -e .)"
        )
    return candidate


def _resolve_benchmarks(names: Sequence[str], directory: Path) -> List[Path]:
    """Map short names ('hotpath') to benchmark files, validating each."""
    available = sorted(directory.glob("bench_*.py"))
    if not names:
        return available
    by_stem = {path.stem: path for path in available}
    resolved: List[Path] = []
    for name in names:
        stem = name[: -len(".py")] if name.endswith(".py") else name
        if not stem.startswith("bench_"):
            stem = f"bench_{stem}"
        path = by_stem.get(stem)
        if path is None:
            known = ", ".join(p.stem[len("bench_"):] for p in available)
            raise ReproError(f"unknown benchmark {name!r}; available: {known}")
        resolved.append(path)
    return resolved


#: Stages ``repro bench --profile`` knows how to isolate.
PROFILE_STAGES = (
    "encode", "decode", "transform", "transform-batch", "parity-batch",
    "crc-batch", "encode-batch", "decode-batch",
    "switch-encode", "switch-decode",
)

#: Stages profiled by a bare ``--profile`` (the historical behaviour).
DEFAULT_PROFILE_STAGES = ("encode", "decode")


def _profile_chunk_frames(count: int, transform, distinct_bases: int = 32) -> list:
    """Raw chunk frames over a bounded basis pool (misses then mostly hits)."""
    import random

    from repro.net.ethernet import EthernetFrame
    from repro.net.mac import MacAddress
    from repro.zipline.headers import ETHERTYPE_RAW_CHUNK

    destination = MacAddress("02:00:00:00:00:02")
    source = MacAddress("02:00:00:00:00:01")
    rng = random.Random(7)
    code = transform.code
    bases = [rng.getrandbits(code.k) for _ in range(max(1, distinct_bases))]
    frames = []
    for _ in range(count):
        basis = rng.choice(bases)
        body = code.encode(basis) ^ (1 << rng.randrange(code.n))
        chunk = ((rng.getrandbits(1) << code.n) | body).to_bytes(
            transform.chunk_bytes, "big"
        )
        frames.append(
            EthernetFrame(destination, source, ETHERTYPE_RAW_CHUNK, chunk).to_bytes()
        )
    return frames


def _profile_hot_paths(
    chunks: int, stages: Sequence[str], backend: Optional[str] = None
) -> int:
    """cProfile the requested hot-path stages; print top-25 cumulative each."""
    import cProfile
    import io
    import pstats

    from repro.core.codec import GDCodec
    from repro.core.transform import GDTransform
    from repro.workloads import SyntheticSensorWorkload

    unknown = [name for name in stages if name not in PROFILE_STAGES]
    if unknown:
        raise ReproError(
            f"unknown profile stage {unknown[0]!r}; "
            f"valid stages: {', '.join(PROFILE_STAGES)}"
        )

    workload = SyntheticSensorWorkload(
        num_chunks=max(1, chunks), distinct_bases=32, seed=2020
    )
    data = b"".join(workload.chunks())

    def top25(profile: "cProfile.Profile") -> str:
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream).sort_stats("cumulative").print_stats(25)
        return stream.getvalue()

    def run_profiled(function):
        profile = cProfile.Profile()
        profile.enable()
        value = function()
        profile.disable()
        return value, profile

    def profile_encode():
        codec = GDCodec(order=8, identifier_bits=15, backend=backend)
        _, profile = run_profiled(lambda: codec.compress(data))
        title = (f"encode: GDCodec.compress of {len(data):,} bytes "
                 f"({chunks:,} chunks)")
        return title, profile

    def profile_decode():
        codec = GDCodec(order=8, identifier_bits=15, backend=backend)
        result = codec.compress(data)
        decoder = codec.clone()
        restored, profile = run_profiled(
            lambda: decoder.decompress_records(
                result.records, original_bytes=len(data)
            )
        )
        if restored != data:
            raise ReproError(
                "profile round trip corrupted the data (fast-path bug?)"
            )
        title = f"decode: decompress_records of {len(result.records):,} records"
        return title, profile

    def profile_transform():
        transform = GDTransform(order=8, backend=backend)
        fields, profile = run_profiled(lambda: transform.split_batch_fields(data))
        title = (f"transform: split_batch_fields of {len(data):,} bytes "
                 f"({len(fields):,} chunks, backend {transform.backend})")
        return title, profile

    def profile_transform_batch():
        transform = GDTransform(order=8, backend=backend)
        split, profile = run_profiled(lambda: transform.split_batch_columns(data))
        title = (f"transform-batch: split_batch_columns of {len(data):,} bytes "
                 f"({len(split):,} chunks, backend {transform.backend})")
        return title, profile

    def profile_parity_batch():
        transform = GDTransform(order=8, backend=backend)
        bases = [basis for _, basis, _ in transform.split_batch_fields(data)]
        _, profile = run_profiled(
            lambda: transform.code.parities_of_bases(
                bases, backend=transform.backend_impl
            )
        )
        title = (f"parity-batch: parities_of_bases over {len(bases):,} bases "
                 f"(backend {transform.backend})")
        return title, profile

    def profile_crc_batch():
        transform = GDTransform(order=8, backend=backend)
        engine = transform.code.crc_engine
        record_bits = 8 * transform.chunk_bytes
        _, profile = run_profiled(
            lambda: engine.compute_batch(data, record_bits, backend=backend)
        )
        title = (f"crc-batch: compute_batch over {len(data):,} bytes "
                 f"({chunks:,} records of {record_bits} bits, "
                 f"backend {transform.backend})")
        return title, profile

    def profile_encode_batch():
        codec = GDCodec(order=8, identifier_bits=15, backend=backend)
        blob, profile = run_profiled(
            lambda: codec.to_container(codec.compress(data))
        )
        title = (f"encode-batch: compress + pack_stream container of "
                 f"{len(data):,} bytes -> {len(blob):,} bytes")
        return title, profile

    def profile_decode_batch():
        codec = GDCodec(order=8, identifier_bits=15, backend=backend)
        blob = codec.to_container(codec.compress(data))
        decoder = codec.clone()
        restored, profile = run_profiled(
            lambda: decoder.decompress_container(blob)
        )
        if restored != data:
            raise ReproError(
                "profile round trip corrupted the data (fast-path bug?)"
            )
        title = (f"decode-batch: columnar decompress_container of "
                 f"{len(blob):,} container bytes")
        return title, profile

    def build_switch_pair():
        from repro.controlplane.manager import ZipLineControlPlane
        from repro.zipline.decoder_switch import ZipLineDecoderSwitch
        from repro.zipline.encoder_switch import ZipLineEncoderSwitch

        transform = GDTransform(order=8)
        encoder = ZipLineEncoderSwitch(transform=transform, forwarding={0: 1})
        decoder = ZipLineDecoderSwitch(transform=transform, forwarding={0: 1})
        # Functional mode (no simulator): learn digests install mappings
        # synchronously, so the frame stream exercises both the learn/miss
        # and the compressed-hit paths.
        ZipLineControlPlane(
            encoder.digest_engine,
            encoder_switch=encoder,
            decoder_switch=decoder,
        )
        frames = _profile_chunk_frames(max(1, chunks), transform)
        return encoder, decoder, frames

    def profile_switch_encode():
        encoder, _decoder, frames = build_switch_pair()
        encoder.switch.attach_port(1, lambda data, time: None)

        def push() -> None:
            for frame in frames:
                encoder.receive(frame, ingress_port=0)

        _, profile = run_profiled(push)
        title = (f"switch-encode: {len(frames):,} raw chunk frames through "
                 "ZipLineEncoderSwitch")
        return title, profile

    def profile_switch_decode():
        encoder, decoder, frames = build_switch_pair()
        encoded: List[bytes] = []
        encoder.switch.attach_port(1, lambda data, time: encoded.append(data))
        for frame in frames:
            encoder.receive(frame, ingress_port=0)
        decoder.switch.attach_port(1, lambda data, time: None)

        def push() -> None:
            for frame in encoded:
                decoder.receive(frame, ingress_port=0)

        _, profile = run_profiled(push)
        title = (f"switch-decode: {len(encoded):,} ZipLine frames through "
                 "ZipLineDecoderSwitch")
        return title, profile

    runners = {
        "encode": profile_encode,
        "decode": profile_decode,
        "transform": profile_transform,
        "transform-batch": profile_transform_batch,
        "parity-batch": profile_parity_batch,
        "crc-batch": profile_crc_batch,
        "encode-batch": profile_encode_batch,
        "decode-batch": profile_decode_batch,
        "switch-encode": profile_switch_encode,
        "switch-decode": profile_switch_decode,
    }
    for stage in stages:
        title, profile = runners[stage]()
        print(f"=== {title} ===")
        print(top25(profile))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        if args.top < 0:
            raise ReproError(f"--top must be non-negative, got {args.top}")
        events = obs.read_events(str(args.file))
        summary = obs.summarize_events(events, top=args.top)
        print(obs.format_summary(summary))
        return 0
    raise ReproError(f"unknown trace subcommand {args.trace_command!r}")


def _cmd_bench(args: argparse.Namespace) -> int:
    backends_requested = list(args.backend or [])
    if args.profile is not None:
        stages = list(args.profile) or list(DEFAULT_PROFILE_STAGES)
        if len(backends_requested) > 1:
            raise ReproError(
                "--profile runs on one backend at a time; pass a single "
                "--backend"
            )
        backend = backends_requested[0] if backends_requested else None
        return _profile_hot_paths(args.profile_chunks, stages, backend=backend)
    directory = _benchmarks_dir()
    selected = _resolve_benchmarks(args.names, directory)
    if args.list:
        rows = [[path.stem[len("bench_"):], str(path.name)] for path in selected]
        print(format_table(["name", "file"], rows, title="available benchmarks"))
        return 0

    import subprocess

    repo_root = directory.parent
    environment = dict(os.environ)
    environment["REPRO_BENCH_SMOKE"] = "0" if args.full else "1"
    if backends_requested:
        environment["REPRO_BENCH_BACKENDS"] = ",".join(backends_requested)
    # Make `import benchmarks.conftest` and `import repro` work regardless
    # of how the console script was installed.
    extra_paths = [str(repo_root), str(repo_root / "src")]
    current = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = os.pathsep.join(
        extra_paths + ([current] if current else [])
    )
    command = [
        sys.executable, "-m", "pytest",
        *[str(path) for path in selected],
        "-q", "--benchmark-disable",
    ]
    mode = "full" if args.full else "smoke"
    print(f"running {len(selected)} benchmark file(s) in {mode} mode")
    completed = subprocess.run(command, env=environment, cwd=repo_root)
    if completed.returncode == 0:
        print(f"results written to {directory / 'results'}")
    return completed.returncode


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table_1(include_validity=True))
    return 0


def _cmd_learning_delay(args: argparse.Namespace) -> int:
    samples: List[float] = []
    for seed in range(args.repetitions):
        chunk = SyntheticSensorWorkload(num_chunks=1, distinct_bases=1, seed=seed).chunks()[0]
        deployment = ZipLineDeployment(scenario="dynamic", seed=seed)
        deployment.replay_chunks([chunk] * args.packets, packet_rate=1e6)
        deployment.run()
        learning_time = deployment.learning_time()
        if learning_time is None:
            print("warning: no compressed packet observed; increase --packets")
            return 1
        samples.append(learning_time * 1e3)
    summary = summarize(samples)
    print(f"learning delay over {args.repetitions} runs: {summary.format('ms', 3)}")
    print("paper reports (1.77 ± 0.08) ms")
    return 0


_HANDLERS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "codecs": _cmd_codecs,
    "generate-trace": _cmd_generate_trace,
    "replay": _cmd_replay,
    "topology": _cmd_topology,
    "experiment": _cmd_experiment,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "table1": _cmd_table1,
    "learning-delay": _cmd_learning_delay,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except (ReproError, OSError) as error:
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
