"""Command-line interface for the ZipLine reproduction.

Exposes the pieces a user reaches for most often without writing Python:

* ``compress`` / ``decompress`` — file compression with the GD codec and the
  self-contained ``GDZ1`` container;
* ``generate-trace`` — write a synthetic-sensor or DNS chunk trace as a pcap
  file ready to replay;
* ``replay`` — run a pcap chunk trace through the simulated two-switch
  deployment and report the Figure 3 style accounting;
* ``table1`` — print the reproduced Table 1;
* ``learning-delay`` — measure the dynamic-learning delay (the paper's
  1.77 ms experiment).

Invoke with ``python -m repro ...`` or look at ``repro.cli.main``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.statistics import summarize
from repro.core.codec import GDCodec
from repro.core.polynomials import render_table_1
from repro.workloads import ChunkTrace, DnsQueryWorkload, SyntheticSensorWorkload
from repro.zipline import DeploymentScenario, ZipLineDeployment

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZipLine reproduction: generalized deduplication tooling",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser(
        "compress", help="compress a file into a GDZ1 container"
    )
    compress.add_argument("input", type=Path, help="file to compress")
    compress.add_argument("output", type=Path, help="container to write")
    compress.add_argument("--order", type=int, default=8, help="Hamming order m (default 8)")
    compress.add_argument(
        "--identifier-bits", type=int, default=15, help="identifier width t (default 15)"
    )

    decompress = subparsers.add_parser(
        "decompress", help="decompress a GDZ1 container back into a file"
    )
    decompress.add_argument("input", type=Path, help="container to read")
    decompress.add_argument("output", type=Path, help="file to write")

    generate = subparsers.add_parser(
        "generate-trace", help="generate a chunk trace and write it as a pcap"
    )
    generate.add_argument(
        "dataset", choices=("synthetic", "dns"), help="which Figure 3 dataset to generate"
    )
    generate.add_argument("output", type=Path, help="pcap file to write")
    generate.add_argument("--chunks", type=int, default=10_000, help="number of chunks/queries")
    generate.add_argument("--bases", type=int, default=32, help="distinct bases (synthetic)")
    generate.add_argument("--names", type=int, default=300, help="distinct names (dns)")
    generate.add_argument("--seed", type=int, default=2020, help="generator seed")

    replay = subparsers.add_parser(
        "replay", help="replay a chunk-trace pcap through the simulated deployment"
    )
    replay.add_argument("input", type=Path, help="pcap produced by generate-trace")
    replay.add_argument(
        "--scenario",
        choices=[scenario.value for scenario in DeploymentScenario],
        default="dynamic",
        help="dictionary scenario (default: dynamic)",
    )
    replay.add_argument(
        "--packet-rate", type=float, default=1e6, help="replay rate in packets/s"
    )

    subparsers.add_parser("table1", help="print the reproduced Table 1")

    learning = subparsers.add_parser(
        "learning-delay", help="measure the dynamic-learning delay (paper: 1.77 ms)"
    )
    learning.add_argument("--repetitions", type=int, default=10, help="number of runs")
    learning.add_argument("--packets", type=int, default=4000, help="packets per run")

    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    data = args.input.read_bytes()
    codec = GDCodec(
        order=args.order,
        identifier_bits=args.identifier_bits,
        alignment_padding_bits=0,
    )
    blob = codec.compress_to_container(data, pad=True)
    args.output.write_bytes(blob)
    ratio = len(blob) / len(data) if data else 0.0
    print(
        f"{args.input} ({len(data):,} B) -> {args.output} ({len(blob):,} B), "
        f"container ratio {ratio:.3f}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    blob = args.input.read_bytes()
    codec = GDCodec.from_container_header(blob)
    data = codec.decompress_container(blob)
    args.output.write_bytes(data)
    print(f"{args.input} -> {args.output} ({len(data):,} B restored)")
    return 0


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        workload = SyntheticSensorWorkload(
            num_chunks=args.chunks, distinct_bases=args.bases, seed=args.seed
        )
        trace = workload.trace()
    else:
        workload = DnsQueryWorkload(
            num_queries=args.chunks, distinct_names=args.names, seed=args.seed
        )
        trace = workload.trace()
    count = trace.to_pcap(args.output)
    stats = trace.stats()
    print(
        f"wrote {count:,} chunk packets to {args.output} "
        f"({stats.total_bytes / 1e6:.2f} MB of payload, "
        f"{stats.distinct_chunks:,} distinct chunks)"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = ChunkTrace.from_pcap(args.input)
    scenario = DeploymentScenario.from_name(args.scenario)
    static_bases = None
    if scenario is DeploymentScenario.STATIC:
        from repro.core.transform import GDTransform

        static_bases = trace.distinct_bases(GDTransform(order=8))
    deployment = ZipLineDeployment(scenario=scenario, static_bases=static_bases)
    summary = deployment.replay_and_run(trace.chunks, packet_rate=args.packet_rate)
    lossless = deployment.verify_lossless(trace.chunks)
    rows = [
        ["chunks replayed", f"{len(trace):,}"],
        ["type-2 packets", f"{summary.uncompressed_packets:,}"],
        ["type-3 packets", f"{summary.compressed_packets:,}"],
        ["bytes on the compressed hop", f"{summary.transmitted_payload_bytes:,}"],
        ["compression ratio", f"{summary.compression_ratio:.4f}"],
        ["savings", f"{summary.savings_percent:.1f} %"],
        [
            "learning delay",
            "n/a"
            if summary.learning_time is None
            else f"{summary.learning_time * 1e3:.3f} ms",
        ],
        ["lossless", "yes" if lossless else "NO"],
    ]
    print(format_table(["metric", "value"], rows, title=f"replay ({scenario.value})"))
    return 0 if lossless else 1


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table_1(include_validity=True))
    return 0


def _cmd_learning_delay(args: argparse.Namespace) -> int:
    samples: List[float] = []
    for seed in range(args.repetitions):
        chunk = SyntheticSensorWorkload(num_chunks=1, distinct_bases=1, seed=seed).chunks()[0]
        deployment = ZipLineDeployment(scenario="dynamic", seed=seed)
        deployment.replay_chunks([chunk] * args.packets, packet_rate=1e6)
        deployment.run()
        learning_time = deployment.learning_time()
        if learning_time is None:
            print("warning: no compressed packet observed; increase --packets")
            return 1
        samples.append(learning_time * 1e3)
    summary = summarize(samples)
    print(f"learning delay over {args.repetitions} runs: {summary.format('ms', 3)}")
    print("paper reports (1.77 ± 0.08) ms")
    return 0


_HANDLERS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "generate-trace": _cmd_generate_trace,
    "replay": _cmd_replay,
    "table1": _cmd_table1,
    "learning-delay": _cmd_learning_delay,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
