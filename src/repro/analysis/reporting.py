"""Text rendering of the reproduced tables and figures.

Every benchmark harness ends by printing the rows/series the paper reports.
This module centralises the formatting: fixed-width tables, ASCII horizontal
bar charts (Figure 3/5 are horizontal bar plots in the paper), and
side-by-side "paper vs reproduced" comparisons for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ReproError

__all__ = [
    "format_table",
    "horizontal_bars",
    "ComparisonRow",
    "comparison_table",
    "save_results_json",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    if not headers:
        raise ReproError("a table needs at least one column")
    normalised_rows = [[_cell(value) for value in row] for row in rows]
    for index, row in enumerate(normalised_rows):
        if len(row) != len(headers):
            raise ReproError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in normalised_rows))
        if normalised_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in normalised_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def horizontal_bars(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    maximum: Optional[float] = None,
    annotate: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a horizontal ASCII bar chart (largest value = full width)."""
    if not values:
        raise ReproError("cannot render an empty bar chart")
    if width <= 0:
        raise ReproError("bar width must be positive")
    scale = maximum if maximum is not None else max(values.values())
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar_length = int(round(width * min(value, scale) / scale))
        bar = "█" * bar_length
        note = ""
        if annotate and label in annotate:
            note = f"  {annotate[label]}"
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} {value:.4g} {unit}{note}".rstrip()
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ComparisonRow:
    """One line of a paper-vs-reproduced comparison."""

    label: str
    paper_value: Optional[float]
    reproduced_value: Optional[float]
    unit: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        """Relative deviation from the paper value, when both are known."""
        if self.paper_value in (None, 0) or self.reproduced_value is None:
            return None
        return (self.reproduced_value - self.paper_value) / self.paper_value


def comparison_table(rows: Sequence[ComparisonRow], title: str = "") -> str:
    """Render a paper-vs-reproduced table with relative errors."""
    table_rows = []
    for row in rows:
        error = row.relative_error
        table_rows.append(
            [
                row.label,
                "n/a" if row.paper_value is None else f"{row.paper_value:.4g} {row.unit}".strip(),
                "n/a"
                if row.reproduced_value is None
                else f"{row.reproduced_value:.4g} {row.unit}".strip(),
                "n/a" if error is None else f"{100 * error:+.1f} %",
            ]
        )
    return format_table(
        ["metric", "paper", "reproduced", "deviation"], table_rows, title=title
    )


def save_results_json(
    path: Union[str, Path], results: Mapping[str, object], indent: int = 2
) -> Path:
    """Persist benchmark results as JSON (used by the bench harnesses)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=indent, sort_keys=True, default=str)
    return target
