"""Experiment methodology helpers: statistics, repetition, reporting."""

from repro.analysis.experiment import (
    ExperimentResult,
    ExperimentRunner,
    PAPER_REPETITIONS,
    summarize_groups,
)
from repro.analysis.reporting import (
    ComparisonRow,
    comparison_table,
    format_table,
    horizontal_bars,
    save_results_json,
)
from repro.analysis.statistics import (
    MeasurementSummary,
    confidence_interval_95,
    mean,
    standard_deviation,
    summarize,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "PAPER_REPETITIONS",
    "summarize_groups",
    "ComparisonRow",
    "comparison_table",
    "format_table",
    "horizontal_bars",
    "save_results_json",
    "MeasurementSummary",
    "confidence_interval_95",
    "mean",
    "standard_deviation",
    "summarize",
]
