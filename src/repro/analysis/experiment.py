"""Repeated-measurement experiment runner.

The evaluation methodology of the paper is uniform: "each measurement is
repeated 10 times, and we show the average and the 95 % confidence
interval".  :class:`ExperimentRunner` packages that methodology so every
benchmark harness uses the same loop: run a callable ``repetitions`` times
(optionally with a per-repetition seed), collect one scalar per run, and
summarise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.statistics import MeasurementSummary, summarize
from repro.exceptions import ReproError

__all__ = ["ExperimentResult", "ExperimentRunner"]

#: The paper's repetition count.
PAPER_REPETITIONS = 10


@dataclass(frozen=True)
class ExperimentResult:
    """A named, summarised repeated measurement."""

    name: str
    samples: Sequence[float]
    summary: MeasurementSummary
    unit: str = ""

    def format(self, precision: int = 2) -> str:
        """Paper-style one-line rendering."""
        return f"{self.name}: {self.summary.format(self.unit, precision)}"


class ExperimentRunner:
    """Run measurements the way the paper's evaluation does.

    Parameters
    ----------
    repetitions:
        Number of repetitions per measurement (10 in the paper).
    """

    def __init__(self, repetitions: int = PAPER_REPETITIONS):
        if repetitions <= 0:
            raise ReproError("repetitions must be positive")
        self.repetitions = repetitions
        self.results: List[ExperimentResult] = []

    def run(
        self,
        name: str,
        measurement: Callable[[int], float],
        unit: str = "",
    ) -> ExperimentResult:
        """Run ``measurement(repetition_index)`` repeatedly and summarise it."""
        if not callable(measurement):
            raise ReproError("measurement must be callable")
        samples = [float(measurement(index)) for index in range(self.repetitions)]
        result = ExperimentResult(
            name=name, samples=tuple(samples), summary=summarize(samples), unit=unit
        )
        self.results.append(result)
        return result

    def run_scenarios(
        self,
        measurements: Dict[str, Callable[[int], float]],
        unit: str = "",
    ) -> List[ExperimentResult]:
        """Run a set of named measurements with identical methodology."""
        return [self.run(name, func, unit) for name, func in measurements.items()]

    def report(self, precision: int = 2) -> str:
        """Multi-line report of every result recorded so far."""
        return "\n".join(result.format(precision) for result in self.results)
