"""Experiment summarisation: repeated measurements and matrix group-bys.

The evaluation methodology of the paper is uniform: "each measurement is
repeated 10 times, and we show the average and the 95 % confidence
interval".  This module packages that methodology for both ways the
repository produces samples:

* :class:`ExperimentRunner` — the repeated-measurement loop: run a callable
  ``repetitions`` times (optionally with a per-repetition seed), collect
  one scalar per run, and summarise;
* :func:`summarize_groups` — the matrix side: fold labelled samples (one
  per scenario of a :class:`~repro.experiments.runner.MatrixResult` sweep)
  into per-group mean ± 95 % CI summaries, preserving first-seen group
  order so sweep tables are deterministic.

Both paths produce :class:`ExperimentResult` objects, so a sweep's per-axis
group-bys render exactly like a repeated benchmark measurement:

>>> results = summarize_groups(
...     [("static", 0.09), ("static", 0.10), ("dynamic", 0.11)]
... )
>>> [(r.name, round(r.summary.mean, 3), r.summary.count) for r in results]
[('static', 0.095, 2), ('dynamic', 0.11, 1)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.statistics import MeasurementSummary, summarize
from repro.exceptions import ReproError

__all__ = ["ExperimentResult", "ExperimentRunner", "summarize_groups"]

#: The paper's repetition count.
PAPER_REPETITIONS = 10


@dataclass(frozen=True)
class ExperimentResult:
    """A named, summarised repeated measurement."""

    name: str
    samples: Sequence[float]
    summary: MeasurementSummary
    unit: str = ""

    def format(self, precision: int = 2) -> str:
        """Paper-style one-line rendering."""
        return f"{self.name}: {self.summary.format(self.unit, precision)}"


class ExperimentRunner:
    """Run measurements the way the paper's evaluation does.

    Parameters
    ----------
    repetitions:
        Number of repetitions per measurement (10 in the paper).
    """

    def __init__(self, repetitions: int = PAPER_REPETITIONS):
        if repetitions <= 0:
            raise ReproError("repetitions must be positive")
        self.repetitions = repetitions
        self.results: List[ExperimentResult] = []

    def run(
        self,
        name: str,
        measurement: Callable[[int], float],
        unit: str = "",
    ) -> ExperimentResult:
        """Run ``measurement(repetition_index)`` repeatedly and summarise it."""
        if not callable(measurement):
            raise ReproError("measurement must be callable")
        samples = [float(measurement(index)) for index in range(self.repetitions)]
        result = ExperimentResult(
            name=name, samples=tuple(samples), summary=summarize(samples), unit=unit
        )
        self.results.append(result)
        return result

    def run_scenarios(
        self,
        measurements: Dict[str, Callable[[int], float]],
        unit: str = "",
    ) -> List[ExperimentResult]:
        """Run a set of named measurements with identical methodology."""
        return [self.run(name, func, unit) for name, func in measurements.items()]

    def report(self, precision: int = 2) -> str:
        """Multi-line report of every result recorded so far."""
        return "\n".join(result.format(precision) for result in self.results)


def summarize_groups(
    labeled_samples: Iterable[Tuple[object, Union[int, float]]],
    unit: str = "",
) -> List[ExperimentResult]:
    """Fold ``(label, value)`` pairs into one summary per distinct label.

    The workhorse behind per-axis group-bys of an experiment matrix: every
    scenario contributes one sample labelled with its axis value, and each
    group is summarised with the paper's mean ± 95 % CI methodology
    (single-sample groups report a zero-width interval).  Group order is
    first-seen order, so callers that iterate scenarios deterministically
    get deterministic tables.
    """
    groups: Dict[str, List[float]] = {}
    for label, value in labeled_samples:
        groups.setdefault(str(label), []).append(float(value))
    return [
        ExperimentResult(
            name=label,
            samples=tuple(samples),
            summary=summarize(samples),
            unit=unit,
        )
        for label, samples in groups.items()
    ]
