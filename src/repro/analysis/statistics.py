"""Measurement statistics: means and 95 % confidence intervals.

The paper repeats every measurement 10 times and reports the average with a
95 % confidence interval.  This module provides the same summary for the
reproduction's measurements, using the Student t distribution for small
sample counts (n = 10 → t ≈ 2.262) so the interval matches what standard
plotting tools produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.exceptions import ReproError

__all__ = ["MeasurementSummary", "mean", "standard_deviation", "confidence_interval_95", "summarize"]

#: Two-sided 97.5 % quantiles of the Student t distribution by degrees of
#: freedom (1–30).  Beyond 30 the normal quantile 1.96 is used.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_95 = 1.96


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sample list."""
    if not samples:
        raise ReproError("cannot compute the mean of an empty sample list")
    return sum(samples) / len(samples)


def standard_deviation(samples: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for a single sample."""
    if not samples:
        raise ReproError("cannot compute the deviation of an empty sample list")
    if len(samples) == 1:
        return 0.0
    centre = mean(samples)
    variance = sum((value - centre) ** 2 for value in samples) / (len(samples) - 1)
    return math.sqrt(variance)


def _t_quantile(degrees_of_freedom: int) -> float:
    if degrees_of_freedom <= 0:
        return _Z_95
    return _T_TABLE.get(degrees_of_freedom, _Z_95)


def confidence_interval_95(samples: Sequence[float]) -> float:
    """Half-width of the 95 % confidence interval of the mean."""
    if not samples:
        raise ReproError("cannot compute a confidence interval of an empty sample list")
    if len(samples) == 1:
        return 0.0
    deviation = standard_deviation(samples)
    quantile = _t_quantile(len(samples) - 1)
    return quantile * deviation / math.sqrt(len(samples))


@dataclass(frozen=True)
class MeasurementSummary:
    """Mean ± 95 % CI of a repeated measurement."""

    mean: float
    ci95: float
    std: float
    count: int
    minimum: float
    maximum: float

    def format(self, unit: str = "", precision: int = 2) -> str:
        """Paper-style "(x ± y) unit" rendering."""
        value = f"({self.mean:.{precision}f} ± {self.ci95:.{precision}f})"
        return f"{value} {unit}".strip()

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "mean": self.mean,
            "ci95": self.ci95,
            "std": self.std,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
        }

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the confidence interval."""
        return self.mean - self.ci95 <= value <= self.mean + self.ci95


def summarize(samples: Sequence[float]) -> MeasurementSummary:
    """Summarise a repeated measurement the way the paper reports numbers."""
    if not samples:
        raise ReproError("cannot summarise an empty sample list")
    return MeasurementSummary(
        mean=mean(samples),
        ci95=confidence_interval_95(samples),
        std=standard_deviation(samples),
        count=len(samples),
        minimum=min(samples),
        maximum=max(samples),
    )
