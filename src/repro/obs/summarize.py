"""Per-stage span statistics for ``repro trace summarize``.

Given a trace (JSON-lines or Chrome export, via
:func:`repro.obs.sinks.read_events`), aggregate the complete spans by
stage name and report count, mean, p50 and p99 duration plus the top-k
slowest chunks — the quickest way to answer "where did this chunk's
latency come from" without opening Perfetto.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["summarize_events", "format_summary"]


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def summarize_events(
    events: Sequence[Mapping[str, Any]], top: int = 5
) -> Dict[str, Any]:
    """Aggregate span statistics per stage.

    Returns a dict with ``stages`` (one entry per span name, sorted by
    total duration descending) and overall ``events``/``spans`` counts.
    Each stage entry carries ``count``, ``total_s``, ``mean_s``,
    ``p50_s``, ``p99_s``, ``max_s`` and ``slowest`` — the ``top`` longest
    spans with their track and, when present, ``flow``/``chunk`` identity.
    """
    stages: Dict[str, List[Mapping[str, Any]]] = {}
    span_count = 0
    for event in events:
        if event.get("ph") != "X":
            continue
        span_count += 1
        stages.setdefault(str(event.get("name", "span")), []).append(event)

    stage_rows: List[Dict[str, Any]] = []
    for name, spans in stages.items():
        durations = sorted(float(span.get("dur", 0.0)) for span in spans)
        total = sum(durations)
        slowest = sorted(spans, key=lambda span: float(span.get("dur", 0.0)), reverse=True)
        slowest_rows: List[Dict[str, Any]] = []
        for span in slowest[: max(0, top)]:
            row: Dict[str, Any] = {
                "dur_s": float(span.get("dur", 0.0)),
                "ts_s": float(span.get("ts", 0.0)),
                "track": span.get("track"),
            }
            if "flow" in span:
                row["flow"] = span["flow"]
            if "chunk" in span:
                row["chunk"] = span["chunk"]
            slowest_rows.append(row)
        stage_rows.append(
            {
                "stage": name,
                "count": len(durations),
                "total_s": total,
                "mean_s": total / len(durations) if durations else 0.0,
                "p50_s": _percentile(durations, 0.50),
                "p99_s": _percentile(durations, 0.99),
                "max_s": durations[-1] if durations else 0.0,
                "slowest": slowest_rows,
            }
        )
    stage_rows.sort(key=lambda row: (-row["total_s"], row["stage"]))
    return {"events": len(events), "spans": span_count, "stages": stage_rows}


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.3f}us"


def format_summary(summary: Mapping[str, Any]) -> str:
    """Render :func:`summarize_events` output as an aligned text table."""
    lines: List[str] = []
    lines.append(
        f"{summary['events']} events, {summary['spans']} spans, "
        f"{len(summary['stages'])} stages"
    )
    if not summary["stages"]:
        lines.append("(no spans — was the trace recorded with tracing enabled?)")
        return "\n".join(lines)
    header = (
        f"{'stage':<18} {'count':>8} {'mean':>12} {'p50':>12} "
        f"{'p99':>12} {'max':>12} {'total':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in summary["stages"]:
        lines.append(
            f"{row['stage']:<18} {row['count']:>8} "
            f"{_fmt_seconds(row['mean_s']):>12} {_fmt_seconds(row['p50_s']):>12} "
            f"{_fmt_seconds(row['p99_s']):>12} {_fmt_seconds(row['max_s']):>12} "
            f"{_fmt_seconds(row['total_s']):>12}"
        )
    for row in summary["stages"]:
        if not row["slowest"]:
            continue
        lines.append(f"slowest {row['stage']}:")
        for slow in row["slowest"]:
            identity = ""
            if "flow" in slow:
                identity = f"  flow={slow['flow']} chunk={slow.get('chunk')}"
            lines.append(
                f"  {_fmt_seconds(slow['dur_s']):>12} at t={slow['ts_s']:.6f}s "
                f"on {slow['track']}{identity}"
            )
    return "\n".join(lines)
