"""``repro.obs`` — the unified telemetry layer.

One module-level tracer, :data:`TRACER`, is the single switch for all
instrumentation in the stack.  It starts as a :class:`NullTracer`
(``enabled = False``), so by default every instrumented call site costs
exactly one attribute lookup plus one boolean test — verified by
``benchmarks/bench_obs_overhead.py`` and by the off-mode byte-identity
tests.  :func:`enable` swaps in a live :class:`Tracer`; :func:`disable`
swaps the no-op back and returns whatever was installed.

Instrumented modules must import the *module* and read the attribute at
call time::

    from repro import obs as _obs
    ...
    tracer = _obs.TRACER
    if tracer.enabled:
        tracer.instant("link.drop", track=self.name)

(From-importing ``TRACER`` would freeze a stale reference and miss the
swap.)

See ``docs/observability.md`` for the event schema, span taxonomy and
how to open exports in Perfetto.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.sinks import (
    EventCollector,
    JsonLinesSink,
    event_sort_key,
    merge_segments,
    read_events,
    write_chrome_trace,
    write_events,
)
from repro.obs.snapshot import PeriodicSnapshotter
from repro.obs.summarize import format_summary, summarize_events
from repro.obs.tracer import COUNTER, INSTANT, SPAN, NullTracer, Tracer

__all__ = [
    "TRACER",
    "enable",
    "disable",
    "Tracer",
    "NullTracer",
    "EventCollector",
    "JsonLinesSink",
    "PeriodicSnapshotter",
    "write_events",
    "write_chrome_trace",
    "read_events",
    "merge_segments",
    "event_sort_key",
    "summarize_events",
    "format_summary",
    "SPAN",
    "INSTANT",
    "COUNTER",
]

#: The process-wide tracer every instrumented call site reads.
TRACER: Any = NullTracer()


def enable(
    sink: Optional[Any] = None,
    clock: Optional[Callable[[], float]] = None,
    shard: Optional[int] = None,
    snapshot_interval: Optional[float] = None,
) -> Tracer:
    """Install a live tracer as :data:`TRACER` and return it.

    ``sink`` defaults to a fresh :class:`EventCollector`.  The previous
    tracer is replaced outright; callers that need to restore it (the
    sharded workers do) should save ``obs.TRACER`` first and put it back
    in a ``finally``.
    """
    global TRACER
    tracer = Tracer(
        sink if sink is not None else EventCollector(),
        clock=clock,
        shard=shard,
        snapshot_interval=snapshot_interval,
    )
    TRACER = tracer
    return tracer


def disable() -> Any:
    """Reinstall the no-op tracer; returns the tracer that was active."""
    global TRACER
    previous = TRACER
    TRACER = NullTracer()
    return previous
