"""Periodic metric snapshots over simulated time.

:class:`PeriodicSnapshotter` turns end-of-run aggregates into a live
time-series: every N *simulated* seconds it calls a sampler (a plain
callable returning ``{series_name: value}``) and emits the result as a
``C`` (counter) trace event, so a long ``fan-in-stress`` run can be
watched converging — compression ratio climbing as dictionaries warm up,
queue depths breathing, packet rate settling.

Determinism is the design constraint here.  The obvious implementation —
scheduling a repeating simulator event — would change ``executed_events``
and, worse, extend the run's ``duration`` past the last real frame,
changing report bytes.  Instead the snapshotter registers as a
:meth:`Simulator.add_observer <repro.sim.simulator.Simulator.add_observer>`
callback: after each event executes it checks whether simulated time
crossed one or more interval boundaries and emits one sample per crossed
boundary, stamped at the boundary time.  The simulator's schedule is
untouched, so reports stay byte-identical with snapshots on or off.

Because samples are taken *after* the event that crossed the boundary,
values reflect the state at the first instant the simulation was observed
past the boundary — exact for monotone counters at frame granularity,
which is all the sampled series are.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

__all__ = ["PeriodicSnapshotter"]


class PeriodicSnapshotter:
    """Sample a metrics callable every ``interval`` simulated seconds.

    Parameters
    ----------
    interval:
        Simulated seconds between samples; must be positive.
    tracer:
        The tracer snapshots are emitted through (as counter events named
        ``snapshot`` on the ``snapshots`` track).
    sampler:
        Zero-argument callable returning a flat ``{name: number}``
        mapping of the series to record.
    """

    def __init__(
        self,
        interval: float,
        tracer: Any,
        sampler: Callable[[], Mapping[str, float]],
    ) -> None:
        if interval <= 0:
            raise ValueError(f"snapshot interval must be positive, got {interval}")
        self.interval = float(interval)
        self.tracer = tracer
        self.sampler = sampler
        self.samples_taken = 0
        self._next_boundary = self.interval

    def on_event(self, event: Optional[Any] = None) -> None:
        """Simulator observer hook: emit samples for crossed boundaries."""
        now = self.tracer.clock()
        while now >= self._next_boundary:
            boundary = self._next_boundary
            self._next_boundary = boundary + self.interval
            values: Dict[str, float] = dict(self.sampler())
            self.tracer.counter("snapshot", "snapshots", values, ts=boundary)
            self.samples_taken += 1

    def flush(self) -> None:
        """Emit one final sample at the current simulated time.

        Called once when a run finishes so the time-series always ends
        with the run's closing state even if the run length is not a
        multiple of the interval.
        """
        values: Dict[str, float] = dict(self.sampler())
        self.tracer.counter("snapshot", "snapshots", values, ts=self.tracer.clock())
        self.samples_taken += 1
