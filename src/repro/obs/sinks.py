"""Trace sinks and exporters.

Events flow out of the :class:`~repro.obs.tracer.Tracer` as plain dicts.
This module provides the places they can land:

* :class:`EventCollector` — in-memory list, the default for programmatic
  use (engine reports, tests, the CLI when it needs to post-process).
* :class:`JsonLinesSink` — streaming one-JSON-object-per-line writer for
  long runs where buffering the whole trace would defeat the point.
* :func:`write_chrome_trace` — export a sequence of events as a Chrome /
  Perfetto ``trace_event`` JSON file (open in https://ui.perfetto.dev or
  ``chrome://tracing``), one track per node/link, timestamps in
  microseconds of *simulated* time.
* :func:`read_events` / :func:`merge_segments` — load traces back
  (JSON-lines or Chrome JSON) and merge per-shard segments into one
  time-ordered stream.

**Ordering guarantees.**  Within one shard, events are emitted in
simulator execution order and carry a monotonically increasing ``seq``.
Across shards there is no global order on disk; :func:`merge_segments`
establishes one by sorting on ``(ts, shard, seq)``.  That key depends
only on simulated time and the spec-derived shard index — never on which
OS process finished first or how many workers ran — so the merged trace
for ``--workers 4`` is byte-identical to ``--workers 1``, mirroring the
engine's report-identity contract.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "EventCollector",
    "JsonLinesSink",
    "write_events",
    "write_chrome_trace",
    "read_events",
    "merge_segments",
    "event_sort_key",
]


class EventCollector:
    """Accumulate emitted events in memory."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Stream events to a file as JSON-lines, one event per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"trace sink {self.path!r} is closed")
        handle.write(json.dumps(event, sort_keys=True))
        handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def event_sort_key(event: Dict[str, Any]) -> Tuple[float, int, int]:
    """The documented cross-shard ordering key: ``(ts, shard, seq)``."""
    return (
        float(event.get("ts", 0.0)),
        int(event.get("shard", 0)),
        int(event.get("seq", 0)),
    )


def write_events(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write events to ``path`` as JSON-lines; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


_SECONDS_TO_MICROS = 1_000_000.0


def write_chrome_trace(events: Sequence[Dict[str, Any]], path: str) -> int:
    """Export events as Chrome ``trace_event`` JSON for Perfetto.

    Tracks (node/link names) become threads of a single process, each
    announced with a ``thread_name`` metadata record so the viewer shows
    readable lanes.  Simulated-seconds timestamps are scaled to the
    microseconds the format expects.  Returns the number of trace records
    written (excluding metadata).
    """
    track_tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        track = str(event.get("track", "run"))
        tid = track_tids.get(track)
        if tid is None:
            tid = len(track_tids) + 1
            track_tids[track] = tid
        record: Dict[str, Any] = {
            "name": event.get("name", "event"),
            "ph": event.get("ph", "i"),
            "ts": float(event.get("ts", 0.0)) * _SECONDS_TO_MICROS,
            "pid": 1,
            "tid": tid,
        }
        args = dict(event.get("args") or {})
        if "flow" in event:
            args["flow"] = event["flow"]
        if "chunk" in event:
            args["chunk"] = event["chunk"]
        if event.get("shard"):
            args["shard"] = event["shard"]
        ph = record["ph"]
        if ph == "X":
            record["dur"] = float(event.get("dur", 0.0)) * _SECONDS_TO_MICROS
        elif ph == "i":
            record["s"] = "t"
        if args:
            record["args"] = args
        trace_events.append(record)
    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro simulation"},
        }
    ]
    for track, tid in track_tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    payload = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return len(trace_events)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Load a trace file written by this package.

    Accepts both the JSON-lines event stream (``--events-out`` /
    per-shard segments) and the Chrome export (``--trace-out``); for the
    latter, metadata records are dropped and timestamps are scaled back
    to seconds so ``repro trace summarize`` works on either format.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first_line = handle.readline()
        rest = handle.readline()
        handle.seek(0)
        if not rest.strip() and first_line.lstrip().startswith("{"):
            document = json.loads(first_line)
            # A one-line file is only the Chrome export if it actually is
            # one: a single-event JSON-lines segment (a shard that emitted
            # exactly one event) has no traceEvents key and must fall
            # through to the JSONL path, not be read as an empty trace.
            if "traceEvents" in document:
                records = document["traceEvents"]
                events: List[Dict[str, Any]] = []
                for record in records:
                    if record.get("ph") == "M":
                        continue
                    event: Dict[str, Any] = {
                        "name": record.get("name", "event"),
                        "ph": record.get("ph", "i"),
                        "track": record.get("tid", 0),
                        "ts": float(record.get("ts", 0.0)) / _SECONDS_TO_MICROS,
                    }
                    if "dur" in record:
                        event["dur"] = float(record["dur"]) / _SECONDS_TO_MICROS
                    args = record.get("args")
                    if args:
                        event["args"] = dict(args)
                        if "flow" in args:
                            event["flow"] = args["flow"]
                        if "chunk" in args:
                            event["chunk"] = args["chunk"]
                    events.append(event)
                return events
        return [json.loads(line) for line in handle if line.strip()]


def merge_segments(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Merge per-shard JSON-lines segments into one time-ordered stream.

    Sorted on :func:`event_sort_key` — ``(ts, shard, seq)`` — which is a
    pure function of the spec and simulated time, so the result does not
    depend on worker count or process scheduling.
    """
    merged: List[Dict[str, Any]] = []
    for path in paths:
        merged.extend(read_events(path))
    merged.sort(key=event_sort_key)
    return merged
