"""The structured event/span API at the heart of :mod:`repro.obs`.

Two tracer classes share one interface:

* :class:`Tracer` — the live tracer.  Every call appends one plain-dict
  event to the configured sink: counters (``C``), instant events (``i``)
  and complete spans (``X``), the three Chrome ``trace_event`` phases the
  exporters understand.  Timestamps are *simulated* seconds read from a
  pluggable ``clock`` (the engine and harness bind it to their
  :class:`~repro.sim.simulator.Simulator`), so traces line up with the
  report's latency numbers, not with wall-clock noise.
* :class:`NullTracer` — the permanently-disabled tracer.  Every method is
  a no-op and :attr:`~NullTracer.enabled` is ``False``.

Instrumented modules never hold a tracer reference of their own; they read
``repro.obs.TRACER`` (a module *attribute* lookup, so :func:`repro.obs.enable`
swaps the implementation under them) and guard the instrumented block with
``tracer.enabled``.  When tracing is off that guard — one attribute load
and one boolean test — is the entire cost, which is what keeps the
off-mode byte-identity and the ≤2 % hot-path budget trivially safe.

**Chunk correlation.**  The tracer carries an optional *context*: the
``(flow, chunk)`` identity of the packet currently being processed.  The
topology engine (and the linear harness) set it around each injection;
because the simulator is single-threaded and encoding happens
synchronously inside the injection call, every span emitted downstream —
switch encode, link enqueue/serialise/propagate — inherits the identity
automatically.  :class:`~repro.replay.link.EmulatedLink` captures the
context when a frame enters the wire and restores it when the delivery
event fires, so decode and sink-arrival events on later hops still carry
the originating chunk.  Reconstructing one chunk's lifecycle is then a
filter over ``(flow, chunk)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["SPAN", "INSTANT", "COUNTER", "Tracer", "NullTracer"]

#: Event phases, matching the Chrome ``trace_event`` vocabulary so the
#: exporter is a field-rename away from the JSONL stream.
SPAN = "X"
INSTANT = "i"
COUNTER = "C"


def _zero_clock() -> float:
    return 0.0


class Tracer:
    """Collect structured events keyed on simulated time.

    Parameters
    ----------
    sink:
        Any object with an ``emit(event: dict)`` method (see
        :mod:`repro.obs.sinks`).
    clock:
        Zero-argument callable returning the current simulated time in
        seconds.  Defaults to a constant ``0.0``; the engine/harness bind
        it to their simulator as soon as one exists.
    shard:
        Shard index stamped on every event of a sharded worker run, the
        secondary key of the documented merge order ``(ts, shard, seq)``.
        ``None`` (in-process runs) is stamped as shard ``0``.
    snapshot_interval:
        Simulated seconds between :class:`~repro.obs.snapshot.PeriodicSnapshotter`
        samples.  Carried on the tracer so whichever engine/harness the
        run builds can attach the snapshotter without extra plumbing.
    """

    enabled = True

    def __init__(
        self,
        sink: Any,
        clock: Optional[Callable[[], float]] = None,
        shard: Optional[int] = None,
        snapshot_interval: Optional[float] = None,
    ):
        self.sink = sink
        self.clock = clock or _zero_clock
        self.shard = 0 if shard is None else shard
        self.snapshot_interval = snapshot_interval
        self._seq = 0
        self._context: Optional[Tuple[str, int]] = None

    # -- correlation context ------------------------------------------------

    @property
    def context(self) -> Optional[Tuple[str, int]]:
        """The ``(flow, chunk)`` identity events are currently stamped with."""
        return self._context

    def set_context(self, flow: str, chunk: int) -> None:
        """Stamp subsequent events with a chunk identity."""
        self._context = (flow, chunk)

    def clear_context(self) -> None:
        """Stop stamping events with a chunk identity."""
        self._context = None

    def restore_context(self, context: Optional[Tuple[str, int]]) -> None:
        """Reinstate a context captured earlier (links use this across hops)."""
        self._context = context

    # -- emission -----------------------------------------------------------

    def _emit(
        self,
        phase: str,
        name: str,
        track: str,
        ts: float,
        dur: Optional[float],
        args: Optional[Mapping[str, Any]],
    ) -> None:
        seq = self._seq
        self._seq = seq + 1
        event: Dict[str, Any] = {
            "seq": seq,
            "shard": self.shard,
            "ph": phase,
            "name": name,
            "track": track,
            "ts": ts,
        }
        if dur is not None:
            event["dur"] = dur
        context = self._context
        if context is not None:
            event["flow"] = context[0]
            event["chunk"] = context[1]
        if args:
            event["args"] = dict(args)
        self.sink.emit(event)

    def emit_raw(self, event: Dict[str, Any]) -> None:
        """Forward an already-built event dict (the segment merge path)."""
        self.sink.emit(event)

    def instant(
        self,
        name: str,
        track: str,
        args: Optional[Mapping[str, Any]] = None,
        ts: Optional[float] = None,
    ) -> None:
        """One point in simulated time (drops, arrivals, control installs)."""
        self._emit(INSTANT, name, track, self.clock() if ts is None else ts, None, args)

    def span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A complete ``[start, end]`` interval (encode, serialise, ...).

        The simulator computes both endpoints before scheduling, so spans
        are emitted whole — there is no begin/end pairing to get wrong.
        """
        self._emit(SPAN, name, track, start, max(0.0, end - start), args)

    def counter(
        self,
        name: str,
        track: str,
        values: Mapping[str, float],
        ts: Optional[float] = None,
    ) -> None:
        """A sampled set of series values (the snapshot time-series rows)."""
        self._emit(
            COUNTER, name, track, self.clock() if ts is None else ts, None, values
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation guards on :attr:`enabled`, so with this tracer
    installed the only cost anywhere in the stack is the guard itself.
    """

    enabled = False
    shard = 0
    snapshot_interval: Optional[float] = None
    context: Optional[Tuple[str, int]] = None

    def set_context(self, flow: str, chunk: int) -> None:
        pass

    def clear_context(self) -> None:
        pass

    def restore_context(self, context: Optional[Tuple[str, int]]) -> None:
        pass

    def emit_raw(self, event: Dict[str, Any]) -> None:
        pass

    def instant(self, name, track, args=None, ts=None) -> None:
        pass

    def span(self, name, track, start, end, args=None) -> None:
        pass

    def counter(self, name, track, values, ts=None) -> None:
        pass
