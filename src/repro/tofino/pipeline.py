"""The match-action pipeline: parser → ingress → egress → deparser.

A :class:`Pipeline` binds together the pieces defined elsewhere in this
package — a :class:`~repro.tofino.parser.Parser`, user-supplied ingress and
egress control blocks, a :class:`~repro.tofino.parser.Deparser`, a
:class:`~repro.tofino.constraints.ResourceTracker` — and runs packets
through them the way the Tofino hardware does, while keeping the accounting
needed by the evaluation:

* whether the program ever recirculates or duplicates packets (it must not,
  for the line-rate argument of Figure 4 to hold);
* a fixed per-packet pipeline latency (the hardware gives a constant
  port-to-port latency for a compiled program, reflected in Figure 5);
* per-packet-type counters.

Control blocks are plain Python callables ``control(phv)`` operating on a
:class:`PacketContext` by side effect, the same way P4 controls mutate the
header vector and intrinsic metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import PipelineError
from repro.tofino.constraints import ResourceTracker, TofinoResourceProfile
from repro.tofino.parser import Deparser, ParsedPacket, Parser

__all__ = ["PacketContext", "PipelineResult", "Pipeline", "DEFAULT_PIPELINE_LATENCY"]

#: Port-to-port latency of a compiled Tofino program, in seconds.  The public
#: figure for Tofino-class ASICs is well under a microsecond; the paper's
#: Figure 5 RTT (≈ 10 µs) is dominated by the two server NICs.
DEFAULT_PIPELINE_LATENCY = 0.6e-6

#: Egress "port" value meaning the packet is dropped.
DROP_PORT = -1


@dataclass
class PacketContext:
    """The per-packet state a control block manipulates (PHV + intrinsic metadata)."""

    packet: ParsedPacket
    ingress_port: int
    egress_port: int = DROP_PORT
    drop_flag: bool = False
    bridged: Dict[str, int] = field(default_factory=dict)
    digests: List[Tuple[str, Dict[str, int]]] = field(default_factory=list)

    def drop(self) -> None:
        """Mark the packet to be dropped."""
        self.drop_flag = True

    def send_to_port(self, port: int) -> None:
        """Set the egress port."""
        if port < 0:
            raise PipelineError(f"egress port must be non-negative, got {port}")
        self.egress_port = port
        self.drop_flag = False

    def emit_digest(self, digest_type: str, data: Dict[str, int]) -> None:
        """Queue a digest to be sent to the control plane after the pipeline."""
        self.digests.append((digest_type, dict(data)))


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of pushing one packet through the pipeline."""

    egress_port: Optional[int]
    frame: Optional[bytes]
    digests: Tuple[Tuple[str, Dict[str, int]], ...]
    latency: float

    @property
    def dropped(self) -> bool:
        """True when the packet was dropped."""
        return self.egress_port is None


class Pipeline:
    """A single Tofino pipeline bound to a P4-equivalent program.

    Parameters
    ----------
    name:
        Pipeline name for reports.
    parser / deparser:
        Packet parsing machinery.
    ingress / egress:
        Control blocks; ``egress`` may be ``None`` (empty egress control).
    profile:
        Resource budget to validate table placements against.
    pipeline_latency:
        Constant per-packet latency in seconds.
    """

    def __init__(
        self,
        name: str,
        parser: Parser,
        ingress: Callable[[PacketContext], None],
        deparser: Deparser,
        egress: Optional[Callable[[PacketContext], None]] = None,
        profile: Optional[TofinoResourceProfile] = None,
        pipeline_latency: float = DEFAULT_PIPELINE_LATENCY,
    ):
        if pipeline_latency < 0:
            raise PipelineError("pipeline latency cannot be negative")
        self.name = name
        self._parser = parser
        self._ingress = ingress
        self._egress = egress
        self._deparser = deparser
        self.resources = ResourceTracker(profile)
        self._pipeline_latency = pipeline_latency
        self.packets_processed = 0
        self.packets_dropped = 0
        self.parse_errors = 0
        self.recirculations = 0
        self.duplications = 0

    # -- properties -----------------------------------------------------------

    @property
    def pipeline_latency(self) -> float:
        """Constant per-packet latency in seconds."""
        return self._pipeline_latency

    @property
    def parser(self) -> Parser:
        """The parser bound to this pipeline."""
        return self._parser

    @property
    def uses_forbidden_features(self) -> bool:
        """True when the program recirculated or duplicated packets.

        The vendor's line-rate guarantee (quoted in Section 7) only holds for
        programs that avoid these features; ZipLine does, and the Figure 4
        benchmark asserts this flag stays ``False``.
        """
        return self.recirculations > 0 or self.duplications > 0

    # -- processing ----------------------------------------------------------------

    def process(self, frame: bytes, ingress_port: int) -> PipelineResult:
        """Push one frame through parser → ingress → egress → deparser."""
        if ingress_port < 0:
            raise PipelineError(f"ingress port must be non-negative, got {ingress_port}")
        self.packets_processed += 1
        try:
            parsed = self._parser.parse(frame)
        except Exception:
            # Parse errors drop the packet, they do not crash the switch.
            self.parse_errors += 1
            self.packets_dropped += 1
            return PipelineResult(
                egress_port=None, frame=None, digests=(), latency=self._pipeline_latency
            )

        context = PacketContext(packet=parsed, ingress_port=ingress_port)
        self._ingress(context)
        if not context.drop_flag and self._egress is not None:
            self._egress(context)

        if context.drop_flag or context.egress_port == DROP_PORT:
            self.packets_dropped += 1
            return PipelineResult(
                egress_port=None,
                frame=None,
                digests=tuple(context.digests),
                latency=self._pipeline_latency,
            )

        output = self._deparser.emit(context.packet)
        return PipelineResult(
            egress_port=context.egress_port,
            frame=output,
            digests=tuple(context.digests),
            latency=self._pipeline_latency,
        )

    def record_recirculation(self) -> None:
        """Record that the program recirculated a packet (discouraged)."""
        self.recirculations += 1

    def record_duplication(self) -> None:
        """Record that the program duplicated a packet (discouraged)."""
        self.duplications += 1

    # -- reporting -------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Counters describing the pipeline's activity."""
        return {
            "packets_processed": self.packets_processed,
            "packets_dropped": self.packets_dropped,
            "parse_errors": self.parse_errors,
            "recirculations": self.recirculations,
            "duplications": self.duplications,
        }
