"""Packet/byte counters, as provided by the TNA ``Counter`` extern.

ZipLine "adds counters to provide easily-accessible statistics of the inner
workings" (Section 5): packets are classified by the transformation applied
to them (raw → type 2, type 2 → raw, type 3 → raw, ...).  The model mirrors
the TNA API: indexed counters counting packets, bytes, or both, readable
from the control plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.exceptions import ReproError

__all__ = ["CounterType", "CounterSample", "Counter", "NamedCounterSet"]


class CounterType(Enum):
    """What the counter accumulates."""

    PACKETS = "packets"
    BYTES = "bytes"
    PACKETS_AND_BYTES = "packets_and_bytes"


@dataclass(frozen=True)
class CounterSample:
    """A snapshot of one counter cell."""

    packets: int
    bytes: int


class Counter:
    """An indexed counter array (the TNA ``Counter`` extern)."""

    def __init__(self, size: int, counter_type: CounterType = CounterType.PACKETS_AND_BYTES, name: str = ""):
        if size <= 0:
            raise ReproError(f"counter size must be positive, got {size}")
        self._size = size
        self._type = counter_type
        self._packets = [0] * size
        self._bytes = [0] * size
        self.name = name or "counter"

    @property
    def size(self) -> int:
        """Number of counter cells."""
        return self._size

    @property
    def counter_type(self) -> CounterType:
        """What this counter accumulates."""
        return self._type

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise ReproError(f"{self.name}: index {index} out of range [0, {self._size})")

    def count(self, index: int, packet_bytes: int = 0) -> None:
        """Account one packet of ``packet_bytes`` bytes at ``index``."""
        self._check_index(index)
        if packet_bytes < 0:
            raise ReproError(f"packet size must be non-negative, got {packet_bytes}")
        if self._type in (CounterType.PACKETS, CounterType.PACKETS_AND_BYTES):
            self._packets[index] += 1
        if self._type in (CounterType.BYTES, CounterType.PACKETS_AND_BYTES):
            self._bytes[index] += packet_bytes

    def read(self, index: int) -> CounterSample:
        """Read one cell (control-plane access)."""
        self._check_index(index)
        return CounterSample(packets=self._packets[index], bytes=self._bytes[index])

    def read_all(self) -> List[CounterSample]:
        """Read every cell."""
        return [CounterSample(p, b) for p, b in zip(self._packets, self._bytes)]

    def clear(self) -> None:
        """Zero every cell (control-plane access)."""
        self._packets = [0] * self._size
        self._bytes = [0] * self._size


class NamedCounterSet:
    """A small convenience wrapper mapping labels to counter indices.

    The ZipLine program counts packets per transformation kind; giving each
    kind a label keeps the data-plane code and the statistics readable.
    """

    def __init__(self, labels: List[str], name: str = ""):
        if not labels:
            raise ReproError("NamedCounterSet requires at least one label")
        if len(set(labels)) != len(labels):
            raise ReproError("counter labels must be unique")
        self._labels = list(labels)
        self._indices = {label: index for index, label in enumerate(labels)}
        self._counter = Counter(len(labels), CounterType.PACKETS_AND_BYTES, name=name)

    @property
    def labels(self) -> List[str]:
        """The registered labels, in index order."""
        return list(self._labels)

    def count(self, label: str, packet_bytes: int = 0) -> None:
        """Account one packet under ``label``."""
        try:
            index = self._indices[label]
        except KeyError:
            raise ReproError(f"unknown counter label {label!r}") from None
        self._counter.count(index, packet_bytes)

    def read(self, label: str) -> CounterSample:
        """Read the sample for ``label``."""
        try:
            index = self._indices[label]
        except KeyError:
            raise ReproError(f"unknown counter label {label!r}") from None
        return self._counter.read(index)

    def as_dict(self) -> Dict[str, CounterSample]:
        """Every label's sample."""
        return {label: self.read(label) for label in self._labels}

    def clear(self) -> None:
        """Zero every counter."""
        self._counter.clear()
