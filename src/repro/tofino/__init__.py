"""Functional model of the Tofino / TNA data plane used by ZipLine."""

from repro.tofino.constraints import (
    ALIGNMENT_BITS,
    ResourceTracker,
    ResourceUsage,
    TofinoResourceProfile,
    check_header_alignment,
    containers_for_field,
    header_field_padding,
)
from repro.tofino.counters import Counter, CounterSample, CounterType, NamedCounterSet
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial
from repro.tofino.digest import DigestEngine, DigestMessage
from repro.tofino.parser import (
    ACCEPT,
    REJECT,
    Deparser,
    Header,
    HeaderType,
    ParsedPacket,
    Parser,
    ParserState,
)
from repro.tofino.pipeline import (
    DEFAULT_PIPELINE_LATENCY,
    PacketContext,
    Pipeline,
    PipelineResult,
)
from repro.tofino.registers import Register, RegisterAction, RegisterArray
from repro.tofino.switch import PortStats, TofinoSwitch
from repro.tofino.tables import (
    ActionSpec,
    MatchActionTable,
    MatchKind,
    MatchResult,
    TableEntry,
)

__all__ = [
    "ALIGNMENT_BITS",
    "ResourceTracker",
    "ResourceUsage",
    "TofinoResourceProfile",
    "check_header_alignment",
    "containers_for_field",
    "header_field_padding",
    "Counter",
    "CounterSample",
    "CounterType",
    "NamedCounterSet",
    "CrcExtern",
    "CrcPolynomial",
    "DigestEngine",
    "DigestMessage",
    "ACCEPT",
    "REJECT",
    "Deparser",
    "Header",
    "HeaderType",
    "ParsedPacket",
    "Parser",
    "ParserState",
    "DEFAULT_PIPELINE_LATENCY",
    "PacketContext",
    "Pipeline",
    "PipelineResult",
    "Register",
    "RegisterAction",
    "RegisterArray",
    "PortStats",
    "TofinoSwitch",
    "ActionSpec",
    "MatchActionTable",
    "MatchKind",
    "MatchResult",
    "TableEntry",
]
