"""The Tofino CRC/hash extern, modelled in software.

P4-16 on TNA exposes a ``Hash`` extern that can be configured with a
``CRCPolynomial``; ZipLine programs it with the Hamming generator
polynomial (Table 1) and feeds it the chunk to obtain the syndrome in a
single pipeline pass.  :class:`CrcExtern` reproduces that interface:
construction takes the polynomial parameters, :meth:`get` takes the fields
to hash (as ``(value, width)`` pairs, concatenated most-significant first,
exactly like the P4 tuple argument).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from repro.core.bits import BitVector
from repro.core.crc import CrcEngine, CrcParameters, crc_table, slice_tables
from repro.exceptions import CodingError

__all__ = ["CrcPolynomial", "CrcExtern"]

FieldLike = Union[Tuple[int, int], BitVector]


class CrcPolynomial:
    """The TNA ``CRCPolynomial`` extern: coefficients plus variant options.

    Mirrors the P4 constructor
    ``CRCPolynomial<bit<m>>(coeff, reversed, msb, extended, init, xor)``.
    ZipLine instantiates it with ``reversed=false``, ``init=0``, ``xor=0``.
    """

    def __init__(
        self,
        coeff: int,
        width: int,
        reversed_: bool = False,
        init: int = 0,
        xor: int = 0,
    ):
        self._parameters = CrcParameters(
            polynomial=coeff,
            width=width,
            init=init,
            reflect_in=reversed_,
            reflect_out=reversed_,
            xor_out=xor,
            augment=False if (init == 0 and xor == 0 and not reversed_) else True,
            name=f"TNA-CRC-{width}",
        )

    @property
    def parameters(self) -> CrcParameters:
        """The underlying CRC parameter set."""
        return self._parameters

    @property
    def width(self) -> int:
        """CRC width in bits."""
        return self._parameters.width


class CrcExtern:
    """The TNA ``Hash`` extern configured with a CRC polynomial.

    :meth:`get` concatenates its input fields most-significant first and
    returns the CRC, truncated to the extern's output width — the same
    semantics as ``hash.get({hdr.f1, hdr.f2})`` in P4.
    """

    def __init__(self, polynomial: CrcPolynomial):
        self._polynomial = polynomial
        self._engine = CrcEngine(polynomial.parameters)
        self._invocations = 0

    @property
    def width(self) -> int:
        """Output width in bits."""
        return self._polynomial.width

    @property
    def lookup_table(self) -> "tuple[int, ...]":
        """The byte-wise XOR-network table this extern reduces words with.

        Drawn from the same process-wide registry as every
        :class:`~repro.core.crc.CrcEngine`, so the software model shares one
        table per polynomial exactly like the ASIC shares one CRC unit.
        """
        params = self._polynomial.parameters
        return crc_table(params.polynomial, params.width)

    def slice_tables(self, record_bytes: int) -> "list[tuple[int, ...]]":
        """The widened slice-by-N fold tables for ``record_bytes``-byte words.

        One table per byte lane, drawn from the process-wide slice
        registry — the same tables :meth:`get_batch` (and the backend CRC
        kernels) fold with, so the extern model never duplicates a table
        the engine already built.
        """
        params = self._polynomial.parameters
        shift = params.width if params.augment else 0
        return slice_tables(
            params.polynomial, params.width, record_bytes, shift=shift
        )

    @property
    def invocations(self) -> int:
        """How many times the extern has been invoked (for pipeline accounting)."""
        return self._invocations

    def record_invocation(self) -> None:
        """Count one invocation performed by a compiled fast path.

        The ZipLine switch fast paths compute the same CRC through the
        fused byte loop; calling this keeps the extern's accounting
        identical to the interpreted pipeline.
        """
        self._invocations += 1

    def get(self, fields: "FieldLike | Sequence[FieldLike]") -> int:
        """Compute the CRC of the concatenation of ``fields``.

        ``fields`` may be a single ``(value, width)`` pair, a single
        :class:`BitVector`, or a sequence of either (concatenated
        most-significant first).
        """
        if (
            type(fields) is tuple
            and len(fields) == 2
            and type(fields[0]) is int
            and type(fields[1]) is int
        ):
            # Hot path: a single (value, width) pair — the shape the ZipLine
            # programs invoke the extern with on every chunk.
            value, width = fields
            if width <= 0:
                raise CodingError(f"field width must be positive, got {width}")
            if value < 0 or value >> width:
                raise CodingError(
                    f"field value {value:#x} does not fit in {width} bits"
                )
            self._invocations += 1
            return self._engine.compute_bits(value, width)
        normalised = self._normalise(fields)
        value = 0
        total_width = 0
        for field_value, field_width in normalised:
            if field_width <= 0:
                raise CodingError(f"field width must be positive, got {field_width}")
            if field_value < 0 or field_value >> field_width:
                raise CodingError(
                    f"field value {field_value:#x} does not fit in {field_width} bits"
                )
            value = (value << field_width) | field_value
            total_width += field_width
        self._invocations += 1
        return self._engine.compute_bits(value, total_width)

    def get_batch(
        self, data: "bytes | bytearray | memoryview", record_bits: int, backend=None
    ) -> "list[int]":
        """Hash every ``record_bits``-wide record in ``data`` in one call.

        The batch counterpart of :meth:`get` for the drain-queue fast
        paths: one invocation is accounted per record, so pipeline
        accounting is identical to calling :meth:`get` per chunk.
        """
        results = self._engine.compute_batch(data, record_bits, backend=backend)
        self._invocations += len(results)
        return results

    @staticmethod
    def _normalise(
        fields: "FieldLike | Sequence[FieldLike]",
    ) -> Iterable[Tuple[int, int]]:
        if isinstance(fields, BitVector):
            return [(fields.value, fields.width)]
        if isinstance(fields, tuple) and len(fields) == 2 and all(
            isinstance(part, int) for part in fields
        ):
            return [fields]  # a single (value, width) pair
        normalised = []
        for item in fields:  # type: ignore[union-attr]
            if isinstance(item, BitVector):
                normalised.append((item.value, item.width))
            elif isinstance(item, tuple) and len(item) == 2:
                normalised.append((int(item[0]), int(item[1])))
            else:
                raise CodingError(
                    "hash fields must be BitVector or (value, width) tuples, "
                    f"got {item!r}"
                )
        if not normalised:
            raise CodingError("hash extern invoked with no fields")
        return normalised
