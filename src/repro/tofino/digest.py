"""Digests: the data plane's asynchronous channel to the control plane.

When the ZipLine data plane sees an unknown basis it emits a *digest*
containing the basis; the control plane receives it (after a batching and
delivery delay), allocates an identifier and installs the mappings.  This
latency is the dominant part of the paper's measured (1.77 ± 0.08) ms
learning delay, so the model makes it explicit and configurable:

* digests are queued by the data plane with zero cost;
* a batch is delivered to subscribers after ``delivery_latency`` seconds
  (TNA batches digests; the default models the digest DMA + driver path);
* the queue has a finite depth — overflowing digests are dropped and
  counted, as on the real ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ControlPlaneError
from repro.sim.simulator import Simulator

__all__ = ["DigestMessage", "DigestEngine"]

#: Default latency between the data plane emitting a digest and the control
#: plane callback running (seconds).  Chosen so the end-to-end learning time
#: (digest + processing + two table writes) lands near the paper's 1.77 ms.
DEFAULT_DELIVERY_LATENCY = 0.9e-3


@dataclass(frozen=True)
class DigestMessage:
    """One digest record as seen by the control plane."""

    digest_type: str
    data: Dict[str, Any]
    emitted_at: float
    delivered_at: float


class DigestEngine:
    """Queue and deliver digests from the data plane to subscribers.

    Parameters
    ----------
    simulator:
        The shared discrete-event simulator; delivery happens on its clock.
        When ``None`` the engine delivers synchronously (useful for unit
        tests of the data plane alone).
    delivery_latency:
        Seconds between emission and the subscriber callback.
    queue_depth:
        Maximum number of undelivered digests; further digests are dropped.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        delivery_latency: float = DEFAULT_DELIVERY_LATENCY,
        queue_depth: int = 2048,
    ):
        if delivery_latency < 0:
            raise ControlPlaneError("delivery latency cannot be negative")
        if queue_depth <= 0:
            raise ControlPlaneError("queue depth must be positive")
        self._simulator = simulator
        self._delivery_latency = delivery_latency
        self._queue_depth = queue_depth
        self._subscribers: Dict[str, List[Callable[[DigestMessage], None]]] = {}
        self._in_flight = 0
        self.emitted = 0
        self.delivered = 0
        self.dropped = 0

    # -- configuration -------------------------------------------------------

    @property
    def delivery_latency(self) -> float:
        """Configured emission → callback latency in seconds."""
        return self._delivery_latency

    def subscribe(self, digest_type: str, callback: Callable[[DigestMessage], None]) -> None:
        """Register a control-plane callback for a digest type."""
        if not callable(callback):
            raise ControlPlaneError("digest callback must be callable")
        self._subscribers.setdefault(digest_type, []).append(callback)

    def unsubscribe_all(self, digest_type: str) -> None:
        """Remove every subscriber of a digest type."""
        self._subscribers.pop(digest_type, None)

    # -- data-plane side --------------------------------------------------------

    def emit(self, digest_type: str, data: Dict[str, Any]) -> bool:
        """Emit one digest from the data plane.

        Returns ``False`` (and counts a drop) when the queue is full.
        Delivery is scheduled on the simulator when one is attached,
        otherwise the callbacks run immediately.
        """
        self.emitted += 1
        if self._in_flight >= self._queue_depth:
            self.dropped += 1
            return False
        now = self._simulator.now if self._simulator is not None else 0.0
        message = DigestMessage(
            digest_type=digest_type,
            data=dict(data),
            emitted_at=now,
            delivered_at=now + self._delivery_latency,
        )
        self._in_flight += 1
        if self._simulator is None:
            self._deliver(message)
        else:
            self._simulator.schedule_in(
                self._delivery_latency,
                lambda message=message: self._deliver(message),
                description=f"digest:{digest_type}",
            )
        return True

    # -- delivery ------------------------------------------------------------------

    def _deliver(self, message: DigestMessage) -> None:
        self._in_flight -= 1
        self.delivered += 1
        for callback in self._subscribers.get(message.digest_type, []):
            callback(message)

    @property
    def in_flight(self) -> int:
        """Digests emitted but not yet delivered."""
        return self._in_flight
