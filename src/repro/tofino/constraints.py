"""Tofino resource and alignment constraints.

The paper's "Lessons learned" section describes the constraints that shaped
ZipLine's implementation: header fields must be byte aligned (padding bits
are inserted otherwise), every data-plane action must run in constant time,
the pipeline has a fixed number of match-action stages, and tables consume
per-stage SRAM/TCAM resources.  This module models those constraints so the
P4-equivalent programs in :mod:`repro.zipline` can be *checked* against
them: a program that would not fit the hardware raises
:class:`~repro.exceptions.ConstraintViolation` instead of silently
pretending to run at line rate.

The default budget numbers follow the public Tofino 1 documentation
(12 match-action stages per pipeline, exact-match SRAM measured in units of
80-bit × 1024-entry blocks); they are intentionally conservative — the goal
is to reproduce the *kind* of limits the authors worked around, not the
confidential die floor plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bits import align_up
from repro.exceptions import ConstraintViolation

__all__ = [
    "ALIGNMENT_BITS",
    "TofinoResourceProfile",
    "ResourceUsage",
    "ResourceTracker",
    "header_field_padding",
    "check_header_alignment",
    "containers_for_field",
]

#: Header fields must start and end on byte boundaries on the Tofino target.
ALIGNMENT_BITS = 8

#: PHV container sizes available on Tofino (bits).
_CONTAINER_SIZES = (8, 16, 32)


def header_field_padding(field_bits: int, alignment: int = ALIGNMENT_BITS) -> int:
    """Padding bits required to round a header field up to the alignment.

    This is the source of the paper's "useless padding bits": a 247-bit
    basis field needs 1 bit of padding, a 15-bit identifier needs 1, etc.
    """
    if field_bits < 0:
        raise ConstraintViolation(f"field width must be non-negative, got {field_bits}")
    return align_up(field_bits, alignment) - field_bits


def check_header_alignment(field_bits: List[int]) -> int:
    """Validate that a header made of ``field_bits`` is byte aligned.

    Returns the total header width.  Raises :class:`ConstraintViolation`
    when the sum of the field widths is not a multiple of 8 — exactly the
    condition under which the Tofino compiler rejects a header declaration
    and the programmer must add explicit padding fields.
    """
    total = sum(field_bits)
    if any(width <= 0 for width in field_bits):
        raise ConstraintViolation("header fields must have positive widths")
    if total % ALIGNMENT_BITS:
        raise ConstraintViolation(
            f"header of {total} bits is not byte aligned; add "
            f"{header_field_padding(total)} padding bits"
        )
    return total


def containers_for_field(field_bits: int) -> List[int]:
    """Greedy PHV container allocation for a field of ``field_bits`` bits.

    Returns the list of container sizes used.  Mirrors (coarsely) how the
    compiler slices wide fields such as the 247-bit basis across 32-bit
    containers, which is what makes very wide headers expensive.
    """
    if field_bits <= 0:
        raise ConstraintViolation(f"field width must be positive, got {field_bits}")
    remaining = field_bits
    containers: List[int] = []
    while remaining > 0:
        for size in reversed(_CONTAINER_SIZES):
            if remaining >= size or size == _CONTAINER_SIZES[0]:
                containers.append(size)
                remaining -= size
                break
    return containers


@dataclass(frozen=True)
class TofinoResourceProfile:
    """Per-pipeline resource budget of the modelled switch.

    Attributes reflect a single Tofino 1 pipeline as used by the paper's
    Wedge100BF-32X (the paper's program fits one pipeline).
    """

    match_action_stages: int = 12
    sram_blocks_per_stage: int = 80
    tcam_blocks_per_stage: int = 24
    sram_block_bits: int = 80 * 1024  # one unit: 1024 entries of 80 bits
    max_phv_bits: int = 4096
    max_table_entries: int = 1 << 22
    digest_queue_depth: int = 2048
    allows_recirculation: bool = True

    def describe(self) -> str:
        """Readable one-line summary of the profile."""
        return (
            f"Tofino profile: {self.match_action_stages} stages, "
            f"{self.sram_blocks_per_stage} SRAM blocks/stage, "
            f"{self.tcam_blocks_per_stage} TCAM blocks/stage, "
            f"{self.max_phv_bits} PHV bits"
        )


@dataclass
class ResourceUsage:
    """Resources consumed by one logical table or register."""

    name: str
    stage: int
    sram_blocks: int = 0
    tcam_blocks: int = 0
    entries: int = 0

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ConstraintViolation(f"stage must be non-negative, got {self.stage}")
        if self.sram_blocks < 0 or self.tcam_blocks < 0 or self.entries < 0:
            raise ConstraintViolation("resource usage values must be non-negative")


class ResourceTracker:
    """Aggregate resource accounting for one pipeline.

    The pipeline registers every table and register array it instantiates;
    the tracker checks stage counts and per-stage block budgets, and can
    print a usage report similar to the compiler's resource summary.
    """

    def __init__(self, profile: Optional[TofinoResourceProfile] = None):
        self._profile = profile or TofinoResourceProfile()
        self._usages: List[ResourceUsage] = []

    @property
    def profile(self) -> TofinoResourceProfile:
        """The budget this tracker validates against."""
        return self._profile

    @property
    def usages(self) -> List[ResourceUsage]:
        """All registered usages (copy)."""
        return list(self._usages)

    def register(self, usage: ResourceUsage) -> None:
        """Register a resource usage and validate the budget."""
        if usage.stage >= self._profile.match_action_stages:
            raise ConstraintViolation(
                f"{usage.name}: stage {usage.stage} exceeds the "
                f"{self._profile.match_action_stages}-stage pipeline"
            )
        self._usages.append(usage)
        self._validate_stage(usage.stage)

    def _validate_stage(self, stage: int) -> None:
        sram = sum(u.sram_blocks for u in self._usages if u.stage == stage)
        tcam = sum(u.tcam_blocks for u in self._usages if u.stage == stage)
        if sram > self._profile.sram_blocks_per_stage:
            raise ConstraintViolation(
                f"stage {stage} uses {sram} SRAM blocks, budget is "
                f"{self._profile.sram_blocks_per_stage}"
            )
        if tcam > self._profile.tcam_blocks_per_stage:
            raise ConstraintViolation(
                f"stage {stage} uses {tcam} TCAM blocks, budget is "
                f"{self._profile.tcam_blocks_per_stage}"
            )

    def sram_blocks_for_table(self, entries: int, key_bits: int, action_bits: int = 32) -> int:
        """Estimate SRAM blocks needed by an exact-match table.

        A deliberately simple model: each entry consumes the key plus action
        data rounded to the 80-bit memory word, packed into
        1024-entry × 80-bit blocks.
        """
        if entries <= 0:
            return 0
        word_bits = 80
        words_per_entry = max(1, -(-(key_bits + action_bits) // word_bits))
        total_words = entries * words_per_entry
        block_words = 1024
        return max(1, -(-total_words // block_words))

    def stage_summary(self) -> Dict[int, Dict[str, int]]:
        """Per-stage totals: SRAM blocks, TCAM blocks, table entries."""
        summary: Dict[int, Dict[str, int]] = {}
        for usage in self._usages:
            entry = summary.setdefault(
                usage.stage, {"sram_blocks": 0, "tcam_blocks": 0, "entries": 0}
            )
            entry["sram_blocks"] += usage.sram_blocks
            entry["tcam_blocks"] += usage.tcam_blocks
            entry["entries"] += usage.entries
        return summary

    def report(self) -> str:
        """Human-readable resource report."""
        lines = [self._profile.describe()]
        for stage, totals in sorted(self.stage_summary().items()):
            lines.append(
                f"  stage {stage:2d}: {totals['sram_blocks']:3d} SRAM blocks, "
                f"{totals['tcam_blocks']:3d} TCAM blocks, "
                f"{totals['entries']:7d} entries"
            )
        return "\n".join(lines)
