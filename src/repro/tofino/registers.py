"""Data-plane register arrays and stateful ALU actions.

The paper's first design kept the basis-ID mappings in data-plane registers
before moving them to control-plane-managed tables; registers remain part
of the model because they illustrate the constant-time constraint the
authors describe (every register action must touch a single index and run
in bounded time).  The model enforces exactly that: a
:class:`RegisterAction` reads one cell, applies a pure function, writes the
cell back and optionally returns a value — no loops, no global scans.
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from repro.exceptions import RegisterError

__all__ = ["Register", "RegisterArray", "RegisterAction"]

T = TypeVar("T")


class Register:
    """A single data-plane register cell of ``width`` bits."""

    def __init__(self, width: int, initial: int = 0, name: str = ""):
        if width <= 0:
            raise RegisterError(f"register width must be positive, got {width}")
        self._width = width
        self._mask = (1 << width) - 1
        if initial < 0 or initial > self._mask:
            raise RegisterError(
                f"initial value {initial:#x} does not fit in {width} bits"
            )
        self._value = initial
        self.name = name or "register"

    @property
    def width(self) -> int:
        """Cell width in bits."""
        return self._width

    @property
    def value(self) -> int:
        """Current value."""
        return self._value

    def read(self) -> int:
        """Read the register (control-plane style access)."""
        return self._value

    def write(self, value: int) -> None:
        """Write the register (control-plane style access)."""
        if value < 0 or value > self._mask:
            raise RegisterError(
                f"value {value:#x} does not fit in {self._width} bits"
            )
        self._value = value


class RegisterArray:
    """An indexed array of register cells, as declared by ``Register<>(size)``."""

    def __init__(self, size: int, width: int, initial: int = 0, name: str = ""):
        if size <= 0:
            raise RegisterError(f"register array size must be positive, got {size}")
        if width <= 0:
            raise RegisterError(f"register width must be positive, got {width}")
        self._size = size
        self._width = width
        self._mask = (1 << width) - 1
        if initial < 0 or initial > self._mask:
            raise RegisterError(
                f"initial value {initial:#x} does not fit in {width} bits"
            )
        self._cells: List[int] = [initial] * size
        self.name = name or "register_array"
        self._accesses = 0

    @property
    def size(self) -> int:
        """Number of cells."""
        return self._size

    @property
    def width(self) -> int:
        """Cell width in bits."""
        return self._width

    @property
    def accesses(self) -> int:
        """Number of data-plane accesses performed (reads + read-modify-writes)."""
        return self._accesses

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise RegisterError(
                f"{self.name}: index {index} out of range [0, {self._size})"
            )

    # Control-plane style accessors -----------------------------------------

    def read(self, index: int) -> int:
        """Read one cell (control-plane access; not counted as data plane)."""
        self._check_index(index)
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Write one cell (control-plane access)."""
        self._check_index(index)
        if value < 0 or value > self._mask:
            raise RegisterError(
                f"{self.name}: value {value:#x} does not fit in {self._width} bits"
            )
        self._cells[index] = value

    def dump(self) -> List[int]:
        """Copy of every cell (control-plane sync / debugging)."""
        return list(self._cells)

    def clear(self, value: int = 0) -> None:
        """Reset every cell to ``value`` (control-plane access)."""
        if value < 0 or value > self._mask:
            raise RegisterError(f"value {value:#x} does not fit in {self._width} bits")
        self._cells = [value] * self._size

    # Data-plane access -------------------------------------------------------

    def execute(self, index: int, action: "RegisterAction") -> Optional[int]:
        """Run a register action against one cell (data-plane access)."""
        self._check_index(index)
        self._accesses += 1
        current = self._cells[index]
        new_value, output = action.apply(current)
        if new_value < 0 or new_value > self._mask:
            raise RegisterError(
                f"{self.name}: action produced value {new_value:#x} that does not "
                f"fit in {self._width} bits"
            )
        self._cells[index] = new_value
        return output


class RegisterAction:
    """A constant-time read-modify-write on a single register cell.

    Mirrors the TNA ``RegisterAction`` extern: the ``update`` callable
    receives the current cell value and returns ``(new_value, output)``.
    The callable must be a pure function of its argument — the model cannot
    verify purity, but it does enforce single-cell access by construction.
    """

    def __init__(
        self,
        update: Callable[[int], Tuple[int, Optional[int]]],
        name: str = "",
    ):
        if not callable(update):
            raise RegisterError("register action update must be callable")
        self._update = update
        self.name = name or "register_action"

    def apply(self, current: int) -> Tuple[int, Optional[int]]:
        """Apply the update function to the current cell value."""
        result = self._update(current)
        if not isinstance(result, tuple) or len(result) != 2:
            raise RegisterError(
                f"{self.name}: update must return (new_value, output), got {result!r}"
            )
        return result

    # Common canned actions, provided for convenience ------------------------

    @classmethod
    def read_only(cls) -> "RegisterAction":
        """Return the cell value without modifying it."""
        return cls(lambda value: (value, value), name="read")

    @classmethod
    def overwrite(cls, new_value: int) -> "RegisterAction":
        """Overwrite the cell and return the previous value."""
        return cls(lambda value: (new_value, value), name="overwrite")

    @classmethod
    def increment(cls, amount: int = 1, modulo: Optional[int] = None) -> "RegisterAction":
        """Increment the cell (optionally modulo a bound), returning the new value."""

        def update(value: int) -> Tuple[int, Optional[int]]:
            new_value = value + amount
            if modulo is not None:
                new_value %= modulo
            return new_value, new_value

        return cls(update, name="increment")
