"""A P4-style programmable parser and deparser.

P4 programs describe packet parsing as a finite state machine: each state
*extracts* a header (a fixed sequence of bit fields) and *selects* the next
state based on a field value.  The ZipLine program parses the Ethernet
header and then, depending on the EtherType, one of its own headers
(type-2 or type-3).  This module provides the generic machinery —
:class:`HeaderType`, :class:`Header`, :class:`Parser`, :class:`Deparser` —
used by the concrete ZipLine programs in :mod:`repro.zipline`.

Bit-granular extraction is supported (header widths only need to be byte
aligned per header, matching the Tofino constraint checked by
:func:`repro.tofino.constraints.check_header_alignment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bits import mask
from repro.exceptions import ParserError
from repro.tofino.constraints import check_header_alignment

__all__ = [
    "HeaderType",
    "Header",
    "ParsedPacket",
    "ParserState",
    "Parser",
    "Deparser",
    "ACCEPT",
    "REJECT",
]

#: Terminal parser states, as in P4.
ACCEPT = "accept"
REJECT = "reject"


class HeaderType:
    """A named header layout: an ordered list of (field name, width) pairs."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, int]]):
        if not fields:
            raise ParserError(f"header type {name!r} must declare at least one field")
        names = [field_name for field_name, _ in fields]
        if len(set(names)) != len(names):
            raise ParserError(f"header type {name!r} has duplicate field names")
        widths = [width for _, width in fields]
        check_header_alignment(list(widths))
        self.name = name
        self.fields: Tuple[Tuple[str, int], ...] = tuple(
            (str(field_name), int(width)) for field_name, width in fields
        )
        # Width lookups sit on the per-packet hot path; precompute them.
        self._widths: Dict[str, int] = dict(self.fields)
        self._total_bits = sum(width for _, width in self.fields)
        self._total_bytes = self._total_bits // 8

    @property
    def total_bits(self) -> int:
        """Total header width in bits (always a multiple of 8)."""
        return self._total_bits

    @property
    def total_bytes(self) -> int:
        """Total header width in bytes."""
        return self._total_bytes

    def field_width(self, field_name: str) -> int:
        """Width of one field."""
        try:
            return self._widths[field_name]
        except KeyError:
            raise ParserError(
                f"header type {self.name!r} has no field {field_name!r}"
            ) from None

    def instantiate(self, **values: int) -> "Header":
        """Create a valid header instance with the given field values."""
        header = Header(self)
        for name, value in values.items():
            header[name] = value
        header.valid = True
        return header


class Header:
    """A header instance: field values plus a validity flag."""

    def __init__(self, header_type: HeaderType):
        self.header_type = header_type
        self.valid = False
        self._values: Dict[str, int] = dict.fromkeys(header_type._widths, 0)

    def __getitem__(self, field_name: str) -> int:
        if field_name not in self._values:
            raise ParserError(
                f"header {self.header_type.name!r} has no field {field_name!r}"
            )
        return self._values[field_name]

    def __setitem__(self, field_name: str, value: int) -> None:
        width = self.header_type.field_width(field_name)
        if value < 0 or value >> width:
            raise ParserError(
                f"value {value:#x} does not fit in field "
                f"{self.header_type.name}.{field_name} ({width} bits)"
            )
        self._values[field_name] = value

    def as_dict(self) -> Dict[str, int]:
        """Copy of the field values."""
        return dict(self._values)

    def to_bytes(self) -> bytes:
        """Serialise the header fields MSB-first into bytes."""
        value = 0
        for name, width in self.header_type.fields:
            value = (value << width) | self._values[name]
        return value.to_bytes(self.header_type.total_bytes, "big")

    def from_bytes(self, data: bytes) -> None:
        """Populate the fields from ``total_bytes`` of data and mark valid."""
        if len(data) != self.header_type.total_bytes:
            raise ParserError(
                f"header {self.header_type.name!r} needs "
                f"{self.header_type.total_bytes} bytes, got {len(data)}"
            )
        value = int.from_bytes(data, "big")
        remaining = self.header_type.total_bits
        for name, width in self.header_type.fields:
            remaining -= width
            self._values[name] = (value >> remaining) & mask(width)
        self.valid = True

    def __repr__(self) -> str:
        state = "valid" if self.valid else "invalid"
        return f"Header({self.header_type.name}, {state}, {self._values})"


class ParsedPacket:
    """The result of parsing: named headers plus the unparsed payload."""

    def __init__(self) -> None:
        self.headers: Dict[str, Header] = {}
        self.payload: bytes = b""

    def header(self, name: str) -> Header:
        """Fetch a header by name (raises if the parser never extracted it)."""
        try:
            return self.headers[name]
        except KeyError:
            raise ParserError(f"no header named {name!r} was extracted") from None

    def has_valid(self, name: str) -> bool:
        """True when the named header was extracted and is valid."""
        header = self.headers.get(name)
        return header is not None and header.valid


@dataclass
class ParserState:
    """One parser state: extract a header, then select the next state.

    ``select_field`` is ``(header_name, field_name)``; ``transitions`` maps
    field values to next-state names, with ``default`` as the fallback.
    When ``select_field`` is ``None`` the state transitions unconditionally
    to ``default``.
    """

    name: str
    extract: Optional[Tuple[str, HeaderType]] = None
    select_field: Optional[Tuple[str, str]] = None
    transitions: Dict[int, str] = field(default_factory=dict)
    default: str = ACCEPT


class Parser:
    """A P4 parse graph interpreter."""

    def __init__(self, states: Sequence[ParserState], start: str = "start"):
        self._states = {state.name: state for state in states}
        if start not in self._states:
            raise ParserError(f"start state {start!r} is not defined")
        self._start = start
        self.packets_parsed = 0
        self.packets_rejected = 0

    def parse(self, data: bytes) -> ParsedPacket:
        """Run the parse graph over ``data``.

        Raises :class:`ParserError` when the graph reaches the ``reject``
        state or runs out of data mid-extraction.
        """
        packet = ParsedPacket()
        offset = 0
        state_name = self._start
        visited = 0
        while state_name not in (ACCEPT, REJECT):
            visited += 1
            if visited > len(self._states) + 8:
                raise ParserError("parse graph does not terminate (loop detected)")
            try:
                state = self._states[state_name]
            except KeyError:
                raise ParserError(f"undefined parser state {state_name!r}") from None

            if state.extract is not None:
                header_name, header_type = state.extract
                end = offset + header_type.total_bytes
                if end > len(data):
                    self.packets_rejected += 1
                    raise ParserError(
                        f"packet too short: state {state_name!r} needs "
                        f"{header_type.total_bytes} bytes at offset {offset}, "
                        f"packet has {len(data)}"
                    )
                header = Header(header_type)
                header.from_bytes(data[offset:end])
                packet.headers[header_name] = header
                offset = end

            if state.select_field is None:
                state_name = state.default
            else:
                header_name, field_name = state.select_field
                value = packet.header(header_name)[field_name]
                state_name = state.transitions.get(value, state.default)

        if state_name == REJECT:
            self.packets_rejected += 1
            raise ParserError("packet rejected by the parse graph")
        packet.payload = data[offset:]
        self.packets_parsed += 1
        return packet


class Deparser:
    """Reassemble a packet from its valid headers followed by the payload.

    ``order`` lists header names; invalid or missing headers are skipped,
    matching P4 deparser semantics (``packet.emit`` of an invalid header is
    a no-op).
    """

    def __init__(self, order: Sequence[str]):
        if not order:
            raise ParserError("deparser needs at least one header name")
        self._order = list(order)

    def emit(self, packet: ParsedPacket) -> bytes:
        """Serialise the packet."""
        parts: List[bytes] = []
        for name in self._order:
            header = packet.headers.get(name)
            if header is not None and header.valid:
                parts.append(header.to_bytes())
        parts.append(packet.payload)
        return b"".join(parts)
