"""The switch chassis: ports, links and the pipeline that processes frames.

:class:`TofinoSwitch` models the part of the Wedge100BF-32X that the
experiments interact with: 32 front-panel 100 GbE ports, a programmable
pipeline, a digest path towards the control plane, and per-port counters.
Frames are injected on a port (by a host model or a trace replayer), run
through the pipeline, and are delivered to whatever is attached to the
egress port.

Timing uses the shared discrete-event simulator when one is attached: the
pipeline latency is added between ingress and delivery.  Without a
simulator the switch degrades gracefully to an immediate, functional-only
mode, which is what most unit tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.exceptions import PipelineError
from repro.sim.simulator import Simulator
from repro.tofino.counters import CounterSample, NamedCounterSet
from repro.tofino.digest import DigestEngine
from repro.tofino.pipeline import Pipeline, PipelineResult

__all__ = ["PortStats", "TofinoSwitch"]

#: Number of front-panel ports on the modelled switch (Wedge100BF-32X).
DEFAULT_PORT_COUNT = 32

#: Port speed in bits per second (100 GbE).
DEFAULT_PORT_SPEED = 100e9

PortSink = Callable[[bytes, float], None]


@dataclass
class PortStats:
    """Per-port packet and byte counters."""

    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


class TofinoSwitch:
    """A programmable switch: ports + pipeline + digest engine.

    Parameters
    ----------
    name:
        Switch name (used in reports and error messages).
    pipeline:
        The P4-equivalent program to run on every received frame.
    simulator:
        Optional shared simulator; enables latency modelling and timed digest
        delivery.
    port_count / port_speed:
        Front-panel port configuration.
    """

    def __init__(
        self,
        name: str,
        pipeline: Pipeline,
        simulator: Optional[Simulator] = None,
        port_count: int = DEFAULT_PORT_COUNT,
        port_speed: float = DEFAULT_PORT_SPEED,
        digest_engine: Optional[DigestEngine] = None,
    ):
        if port_count <= 0:
            raise PipelineError(f"port count must be positive, got {port_count}")
        if port_speed <= 0:
            raise PipelineError(f"port speed must be positive, got {port_speed}")
        self.name = name
        self.pipeline = pipeline
        self.simulator = simulator
        self.port_count = port_count
        self.port_speed = port_speed
        self.digest_engine = digest_engine or DigestEngine(simulator)
        self._sinks: Dict[int, PortSink] = {}
        self._port_stats: Dict[int, PortStats] = {
            port: PortStats() for port in range(port_count)
        }

    # -- wiring ---------------------------------------------------------------

    def attach_port(self, port: int, sink: PortSink) -> None:
        """Attach a receiver callback to an egress port.

        ``sink(frame_bytes, time)`` is called whenever the switch transmits
        on that port.
        """
        self._check_port(port)
        if not callable(sink):
            raise PipelineError("port sink must be callable")
        self._sinks[port] = sink

    def detach_port(self, port: int) -> None:
        """Remove the receiver attached to a port."""
        self._check_port(port)
        self._sinks.pop(port, None)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.port_count:
            raise PipelineError(
                f"{self.name}: port {port} out of range [0, {self.port_count})"
            )

    # -- data path ----------------------------------------------------------------

    def receive(self, frame: bytes, ingress_port: int) -> PipelineResult:
        """Process a frame arriving on ``ingress_port``.

        Counts the frame, runs the pipeline, emits any digests the program
        produced, and delivers the output frame to the attached sink (after
        the pipeline latency when a simulator is attached).
        """
        self._check_port(ingress_port)
        stats = self._port_stats[ingress_port]
        stats.rx_packets += 1
        stats.rx_bytes += len(frame)

        result = self.pipeline.process(frame, ingress_port)

        for digest_type, data in result.digests:
            self.digest_engine.emit(digest_type, data)

        if result.egress_port is not None and result.frame is not None:
            self._transmit(result.egress_port, result.frame, result.latency)
        return result

    def record_rx(self, ingress_port: int, frame_length: int) -> None:
        """Account one received frame (fast-path twin of :meth:`receive`).

        Compiled program fast paths that bypass the generic pipeline call
        this so port counters stay identical to the interpreted path.
        """
        self._check_port(ingress_port)
        stats = self._port_stats[ingress_port]
        stats.rx_packets += 1
        stats.rx_bytes += frame_length

    def transmit(self, port: int, frame: bytes, latency: float) -> None:
        """Deliver ``frame`` on ``port`` after ``latency`` (public fast-path hook)."""
        self._transmit(port, frame, latency)

    def _transmit(self, port: int, frame: bytes, latency: float) -> None:
        self._check_port(port)
        stats = self._port_stats[port]
        stats.tx_packets += 1
        stats.tx_bytes += len(frame)
        sink = self._sinks.get(port)
        if sink is None:
            return
        if self.simulator is None:
            sink(frame, 0.0)
            return
        deliver_at = self.simulator.now + latency

        tracer = _obs.TRACER
        if tracer.enabled:
            # Carry the current chunk identity across the deferred delivery
            # so everything downstream of this switch (next link, decoder,
            # sink) stays attributed to the frame that traversed it.
            context = tracer.context

            def deliver(frame=frame, deliver_at=deliver_at, context=context) -> None:
                inner = _obs.TRACER
                saved = inner.context
                inner.restore_context(context)
                try:
                    sink(frame, deliver_at)
                finally:
                    inner.restore_context(saved)

        else:

            def deliver(frame=frame, deliver_at=deliver_at) -> None:
                sink(frame, deliver_at)

        self.simulator.schedule_in(latency, deliver, description=f"{self.name}:tx:{port}")

    # -- statistics -----------------------------------------------------------------

    def port_stats(self, port: int) -> PortStats:
        """Counters of one port."""
        self._check_port(port)
        return self._port_stats[port]

    def total_rx_packets(self) -> int:
        """Total packets received across all ports."""
        return sum(stats.rx_packets for stats in self._port_stats.values())

    def total_tx_packets(self) -> int:
        """Total packets transmitted across all ports."""
        return sum(stats.tx_packets for stats in self._port_stats.values())

    def summary(self) -> Dict[str, int]:
        """Aggregate switch counters (ports + pipeline)."""
        summary = {
            "rx_packets": self.total_rx_packets(),
            "tx_packets": self.total_tx_packets(),
            "digests_emitted": self.digest_engine.emitted,
            "digests_dropped": self.digest_engine.dropped,
        }
        summary.update(self.pipeline.summary())
        return summary
