"""Match-action tables with idle timeouts, the workhorse of the data plane.

ZipLine stores its basis ↔ identifier mappings in regular match-action
tables managed by the control plane, and relies on two TNA features the
model reproduces:

* **const entries** — the syndrome → XOR-mask table is generated offline and
  compiled into the program (the paper uses a C++/Boost.CRC generator; the
  reproduction computes the same entries from the Hamming code);
* **per-entry TTL / idle timeout** — the control plane sets a time-to-live
  on each basis-ID entry; entries that are not hit for that long are
  reported, which is how the LRU recycling decides what to evict.

Only exact matching is needed by ZipLine, but ternary matching is included
because forwarding tables in the surrounding switch model use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import TableError

__all__ = [
    "MatchKind",
    "ActionSpec",
    "TableEntry",
    "MatchResult",
    "MatchActionTable",
]


class MatchKind(Enum):
    """Supported match kinds."""

    EXACT = "exact"
    TERNARY = "ternary"


@dataclass(frozen=True)
class ActionSpec:
    """An action a table can invoke: a name plus the expected parameter names."""

    name: str
    parameter_names: Tuple[str, ...] = ()
    handler: Optional[Callable[..., Any]] = None

    def validate_params(self, params: Dict[str, Any]) -> None:
        """Check that the provided parameters match the declared names."""
        expected = set(self.parameter_names)
        provided = set(params)
        if expected != provided:
            raise TableError(
                f"action {self.name!r} expects parameters {sorted(expected)}, "
                f"got {sorted(provided)}"
            )


@dataclass
class TableEntry:
    """One table entry: key, action, parameters, and liveness metadata."""

    key: Hashable
    action: str
    params: Dict[str, Any] = field(default_factory=dict)
    ttl: Optional[float] = None
    is_const: bool = False
    installed_at: float = 0.0
    last_hit: Optional[float] = None
    hit_count: int = 0
    mask: Optional[int] = None  # ternary only
    priority: int = 0  # ternary only

    def idle_since(self, now: float) -> float:
        """Seconds since the entry was last hit (or installed, if never hit)."""
        reference = self.last_hit if self.last_hit is not None else self.installed_at
        return max(0.0, now - reference)

    def is_expired(self, now: float) -> bool:
        """True when the entry's TTL has elapsed without a hit."""
        if self.ttl is None:
            return False
        return self.idle_since(now) >= self.ttl


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a table lookup."""

    hit: bool
    action: str
    params: Dict[str, Any]
    entry: Optional[TableEntry] = None


class MatchActionTable:
    """A P4 match-action table with control-plane add/modify/delete.

    Parameters
    ----------
    name:
        Table name (appears in error messages and resource reports).
    key_bits:
        Width of the match key in bits (used only for resource estimation
        and key validation when keys are integers).
    size:
        Maximum number of entries.
    actions:
        The actions entries may reference.
    default_action:
        Action returned on a miss.
    match_kind:
        ``EXACT`` (hash lookup) or ``TERNARY`` (first match in priority order).
    support_idle_timeout:
        Whether entries may carry TTLs (TNA requires declaring this).
    """

    def __init__(
        self,
        name: str,
        key_bits: int,
        size: int,
        actions: List[ActionSpec],
        default_action: str = "NoAction",
        match_kind: MatchKind = MatchKind.EXACT,
        support_idle_timeout: bool = False,
    ):
        if size <= 0:
            raise TableError(f"table {name!r}: size must be positive, got {size}")
        if key_bits <= 0:
            raise TableError(f"table {name!r}: key width must be positive")
        self.name = name
        self.key_bits = key_bits
        self.size = size
        self.match_kind = match_kind
        self.support_idle_timeout = support_idle_timeout
        self._actions: Dict[str, ActionSpec] = {spec.name: spec for spec in actions}
        if "NoAction" not in self._actions:
            self._actions["NoAction"] = ActionSpec("NoAction")
        if default_action not in self._actions:
            raise TableError(
                f"table {name!r}: default action {default_action!r} is not declared"
            )
        self._default_action = default_action
        self._default_params: Dict[str, Any] = {}
        self._entries: Dict[Hashable, TableEntry] = {}
        self._ternary_entries: List[TableEntry] = []
        self.lookups = 0
        self.hits = 0

    # -- introspection ------------------------------------------------------

    @property
    def actions(self) -> List[str]:
        """Declared action names."""
        return list(self._actions)

    @property
    def default_action(self) -> str:
        """Action applied on a miss."""
        return self._default_action

    def __len__(self) -> int:
        if self.match_kind is MatchKind.TERNARY:
            return len(self._ternary_entries)
        return len(self._entries)

    def is_full(self) -> bool:
        """True when no more entries can be added."""
        return len(self) >= self.size

    def entries(self) -> Iterator[TableEntry]:
        """Iterate over entries (copy-safe)."""
        if self.match_kind is MatchKind.TERNARY:
            return iter(list(self._ternary_entries))
        return iter(list(self._entries.values()))

    def get_entry(self, key: Hashable) -> Optional[TableEntry]:
        """The entry for ``key`` (exact tables only), or ``None``."""
        if self.match_kind is not MatchKind.EXACT:
            raise TableError(f"table {self.name!r}: get_entry requires an exact table")
        return self._entries.get(key)

    # -- control-plane API -----------------------------------------------------

    def set_default_action(self, action: str, params: Optional[Dict[str, Any]] = None) -> None:
        """Change the miss action."""
        spec = self._require_action(action)
        params = params or {}
        spec.validate_params(params)
        self._default_action = action
        self._default_params = params

    def add_entry(
        self,
        key: Hashable,
        action: str,
        params: Optional[Dict[str, Any]] = None,
        ttl: Optional[float] = None,
        now: float = 0.0,
        is_const: bool = False,
        mask: Optional[int] = None,
        priority: int = 0,
    ) -> TableEntry:
        """Install an entry; raises if the table is full or the key exists."""
        spec = self._require_action(action)
        params = params or {}
        spec.validate_params(params)
        if ttl is not None and not self.support_idle_timeout:
            raise TableError(
                f"table {self.name!r} was not declared with idle-timeout support"
            )
        if self.is_full():
            raise TableError(f"table {self.name!r} is full ({self.size} entries)")
        entry = TableEntry(
            key=key,
            action=action,
            params=params,
            ttl=ttl,
            is_const=is_const,
            installed_at=now,
            mask=mask,
            priority=priority,
        )
        if self.match_kind is MatchKind.TERNARY:
            self._ternary_entries.append(entry)
            self._ternary_entries.sort(key=lambda e: -e.priority)
        else:
            if key in self._entries:
                raise TableError(f"table {self.name!r}: key {key!r} already present")
            self._entries[key] = entry
        return entry

    def add_const_entries(
        self, rows: Iterator[Tuple[Hashable, str, Dict[str, Any]]], now: float = 0.0
    ) -> int:
        """Install compile-time constant entries; returns the count."""
        count = 0
        for key, action, params in rows:
            self.add_entry(key, action, params, now=now, is_const=True)
            count += 1
        return count

    def modify_entry(
        self, key: Hashable, action: str, params: Optional[Dict[str, Any]] = None
    ) -> TableEntry:
        """Replace the action/params of an existing (non-const) entry."""
        entry = self._require_entry(key)
        if entry.is_const:
            raise TableError(f"table {self.name!r}: cannot modify const entry {key!r}")
        spec = self._require_action(action)
        params = params or {}
        spec.validate_params(params)
        entry.action = action
        entry.params = params
        return entry

    def delete_entry(self, key: Hashable) -> None:
        """Remove an entry; const entries cannot be removed."""
        entry = self._require_entry(key)
        if entry.is_const:
            raise TableError(f"table {self.name!r}: cannot delete const entry {key!r}")
        if self.match_kind is MatchKind.TERNARY:
            self._ternary_entries.remove(entry)
        else:
            del self._entries[key]

    def reset_entry_ttl(self, key: Hashable, now: float) -> None:
        """Refresh an entry's idle timer (BfRt ``entry_tgt`` style poke)."""
        entry = self._require_entry(key)
        entry.last_hit = now

    def expired_entries(self, now: float) -> List[TableEntry]:
        """Entries whose TTL elapsed without a hit (idle-timeout report)."""
        return [entry for entry in self.entries() if entry.is_expired(now)]

    def clear(self, include_const: bool = False) -> None:
        """Remove entries (optionally the const ones too)."""
        if self.match_kind is MatchKind.TERNARY:
            self._ternary_entries = [
                entry
                for entry in self._ternary_entries
                if entry.is_const and not include_const
            ]
        else:
            self._entries = {
                key: entry
                for key, entry in self._entries.items()
                if entry.is_const and not include_const
            }

    # -- data-plane API ------------------------------------------------------------

    def lookup(self, key: Hashable, now: float = 0.0) -> MatchResult:
        """Look up ``key``; updates hit metadata on a hit."""
        self.lookups += 1
        entry = self._find(key)
        if entry is None:
            return MatchResult(
                hit=False, action=self._default_action, params=dict(self._default_params)
            )
        self.hits += 1
        entry.last_hit = now
        entry.hit_count += 1
        return MatchResult(hit=True, action=entry.action, params=dict(entry.params), entry=entry)

    def lookup_ref(self, key: Hashable, now: float = 0.0) -> Optional[TableEntry]:
        """Hit-path lookup returning the live entry without copying params.

        Same counter and hit-metadata side effects as :meth:`lookup`, but a
        miss returns ``None`` and a hit returns the :class:`TableEntry`
        itself — callers on the per-packet fast path read
        ``entry.params[...]`` directly and must not mutate it.
        """
        self.lookups += 1
        entry = self._find(key)
        if entry is None:
            return None
        self.hits += 1
        entry.last_hit = now
        entry.hit_count += 1
        return entry

    def apply(self, key: Hashable, now: float = 0.0, **handler_kwargs: Any) -> MatchResult:
        """Look up ``key`` and invoke the matched action's handler, if any.

        The handler is called as ``handler(**params, **handler_kwargs)``; its
        return value is discarded (P4 actions operate by side effect on the
        PHV, which callers pass through ``handler_kwargs``).
        """
        result = self.lookup(key, now=now)
        spec = self._actions[result.action]
        if spec.handler is not None:
            spec.handler(**result.params, **handler_kwargs)
        return result

    # -- internals --------------------------------------------------------------------

    def _find(self, key: Hashable) -> Optional[TableEntry]:
        if self.match_kind is MatchKind.EXACT:
            return self._entries.get(key)
        if not isinstance(key, int):
            raise TableError(
                f"table {self.name!r}: ternary lookups require integer keys"
            )
        for entry in self._ternary_entries:
            mask = entry.mask if entry.mask is not None else (1 << self.key_bits) - 1
            if not isinstance(entry.key, int):
                raise TableError(
                    f"table {self.name!r}: ternary entries require integer keys"
                )
            if (key & mask) == (entry.key & mask):
                return entry
        return None

    def _require_action(self, action: str) -> ActionSpec:
        try:
            return self._actions[action]
        except KeyError:
            raise TableError(
                f"table {self.name!r}: action {action!r} is not declared"
            ) from None

    def _require_entry(self, key: Hashable) -> TableEntry:
        if self.match_kind is MatchKind.TERNARY:
            for entry in self._ternary_entries:
                if entry.key == key:
                    return entry
            raise TableError(f"table {self.name!r}: no entry with key {key!r}")
        try:
            return self._entries[key]
        except KeyError:
            raise TableError(f"table {self.name!r}: no entry with key {key!r}") from None
