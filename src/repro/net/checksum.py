"""Checksums used by the framing layer and the workload generators.

Two algorithms are provided:

* the Ethernet frame check sequence (CRC-32, reflected, as transmitted in
  the last 4 octets of a frame) — reuses the core CRC engine so the same
  code path is exercised by the protocol layer and the coding layer;
* the 16-bit ones'-complement Internet checksum used by IPv4/UDP — needed by
  the DNS workload generator to emit well-formed packets.
"""

from __future__ import annotations

from repro.core.crc import CRC32_ETHERNET, CrcEngine

__all__ = ["ethernet_fcs", "verify_ethernet_fcs", "internet_checksum"]

_FCS_ENGINE = CrcEngine(CRC32_ETHERNET)


def ethernet_fcs(frame_without_fcs: bytes) -> int:
    """CRC-32 frame check sequence of an Ethernet frame (header + payload)."""
    return _FCS_ENGINE.compute_bytes(frame_without_fcs)


def verify_ethernet_fcs(frame_without_fcs: bytes, fcs: int) -> bool:
    """True when ``fcs`` matches the computed frame check sequence."""
    return ethernet_fcs(frame_without_fcs) == fcs


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over 16-bit words.

    Odd-length input is implicitly padded with a zero byte, as the RFC
    specifies.  Returns the checksum ready to be stored in a header field
    (i.e. already complemented).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for offset in range(0, len(data), 2):
        total += (data[offset] << 8) | data[offset + 1]
        total = (total & 0xFFFF) + (total >> 16)
    checksum = ~total & 0xFFFF
    return checksum
