"""ZipLine packet formats: the wire encoding of type-1/2/3 packets.

Section 5 of the paper defines three packet types.  The reproduction gives
them a concrete wire format:

* **type 1** (raw): an ordinary Ethernet frame, untouched;
* **type 2** (processed, uncompressed): EtherType
  ``ZIPLINE_UNCOMPRESSED``; payload = prefix bits, basis, syndrome, plus the
  alignment padding the Tofino target requires (one padding byte for the
  paper's ``m = 8`` configuration → 33-byte payload per 32-byte chunk,
  i.e. the 1.03 ratio of Figure 3);
* **type 3** (processed, compressed): EtherType ``ZIPLINE_COMPRESSED``;
  payload = prefix bits, identifier, syndrome (3 bytes for the paper's
  parameters).

:class:`ZipLinePacketCodec` converts between :mod:`repro.core.records`
records and Ethernet payload bytes, and classifies frames by EtherType.
A payload may carry several chunks back to back (the trace replays use one
chunk per packet, like the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.core.bits import align_up, mask
from repro.core.records import CompressedRecord, GDRecord, RecordType, UncompressedRecord
from repro.core.transform import GDTransform
from repro.exceptions import PacketError
from repro.net.ethernet import EthernetFrame, EtherType

__all__ = ["PacketKind", "ZipLinePacketCodec", "classify_frame"]


class PacketKind(IntEnum):
    """The paper's packet-type numbering."""

    RAW = 1
    PROCESSED_UNCOMPRESSED = 2
    PROCESSED_COMPRESSED = 3


def classify_frame(frame: EthernetFrame) -> PacketKind:
    """Classify a frame into one of the three ZipLine packet types."""
    if frame.ethertype == EtherType.ZIPLINE_UNCOMPRESSED:
        return PacketKind.PROCESSED_UNCOMPRESSED
    if frame.ethertype == EtherType.ZIPLINE_COMPRESSED:
        return PacketKind.PROCESSED_COMPRESSED
    return PacketKind.RAW


@dataclass(frozen=True)
class _FieldLayout:
    """Byte-level layout of a ZipLine payload variant."""

    prefix_bits: int
    body_bits: int
    deviation_bits: int
    padding_bits: int

    @property
    def total_bits(self) -> int:
        return self.prefix_bits + self.body_bits + self.deviation_bits + self.padding_bits

    @property
    def total_bytes(self) -> int:
        return self.total_bits // 8


class ZipLinePacketCodec:
    """Convert GD records to/from ZipLine packet payloads.

    Parameters
    ----------
    transform:
        The GD transformation in use (provides prefix/basis/deviation widths).
    identifier_bits:
        Identifier width carried in type-3 packets.
    uncompressed_padding_bits:
        Explicit padding appended to the type-2 layout so the header is byte
        aligned on the Tofino target.  Defaults to the minimum needed for
        byte alignment (8 bits for the paper's 256-bit chunks, matching its
        reported 3 % overhead).
    """

    def __init__(
        self,
        transform: GDTransform,
        identifier_bits: int = 15,
        uncompressed_padding_bits: Optional[int] = None,
    ):
        if identifier_bits <= 0:
            raise PacketError(f"identifier_bits must be positive, got {identifier_bits}")
        self._transform = transform
        self._identifier_bits = identifier_bits

        raw_type2_bits = (
            transform.prefix_bits + transform.basis_bits + transform.deviation_bits
        )
        if uncompressed_padding_bits is None:
            uncompressed_padding_bits = align_up(raw_type2_bits, 8) - raw_type2_bits
            if uncompressed_padding_bits == 0:
                # The Tofino compiler still needs one spare container byte for
                # the paper's configuration; model the measured behaviour of
                # one full padding byte when the fields are already aligned.
                uncompressed_padding_bits = 8
        if (raw_type2_bits + uncompressed_padding_bits) % 8:
            raise PacketError(
                "type-2 layout is not byte aligned: "
                f"{raw_type2_bits} field bits + {uncompressed_padding_bits} padding bits"
            )
        self._type2_layout = _FieldLayout(
            prefix_bits=transform.prefix_bits,
            body_bits=transform.basis_bits,
            deviation_bits=transform.deviation_bits,
            padding_bits=uncompressed_padding_bits,
        )

        raw_type3_bits = (
            transform.prefix_bits + identifier_bits + transform.deviation_bits
        )
        type3_padding = align_up(raw_type3_bits, 8) - raw_type3_bits
        self._type3_layout = _FieldLayout(
            prefix_bits=transform.prefix_bits,
            body_bits=identifier_bits,
            deviation_bits=transform.deviation_bits,
            padding_bits=type3_padding,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transformation whose widths define the layouts."""
        return self._transform

    @property
    def identifier_bits(self) -> int:
        """Identifier width in type-3 packets."""
        return self._identifier_bits

    @property
    def uncompressed_payload_bytes(self) -> int:
        """Wire payload size of a type-2 packet carrying one chunk."""
        return self._type2_layout.total_bytes

    @property
    def compressed_payload_bytes(self) -> int:
        """Wire payload size of a type-3 packet carrying one chunk."""
        return self._type3_layout.total_bytes

    @property
    def raw_payload_bytes(self) -> int:
        """Wire payload size of a type-1 packet carrying one chunk."""
        return self._transform.chunk_bytes

    @property
    def uncompressed_padding_bits(self) -> int:
        """Alignment padding carried by every type-2 packet."""
        return self._type2_layout.padding_bits

    # -- record -> payload -------------------------------------------------------

    def pack_record(self, record: GDRecord) -> bytes:
        """Serialise one record into a ZipLine payload."""
        if isinstance(record, UncompressedRecord):
            return self._pack_fields(
                self._type2_layout, record.prefix, record.basis, record.deviation
            )
        if isinstance(record, CompressedRecord):
            if record.identifier_bits != self._identifier_bits:
                raise PacketError(
                    f"record identifier width {record.identifier_bits} does not "
                    f"match codec width {self._identifier_bits}"
                )
            return self._pack_fields(
                self._type3_layout, record.prefix, record.identifier, record.deviation
            )
        raise PacketError(
            f"cannot pack record of type {type(record).__name__}; raw chunks travel "
            "as ordinary Ethernet payloads"
        )

    def ethertype_for_record(self, record: GDRecord) -> int:
        """EtherType matching a record's packet type."""
        if isinstance(record, UncompressedRecord):
            return EtherType.ZIPLINE_UNCOMPRESSED
        if isinstance(record, CompressedRecord):
            return EtherType.ZIPLINE_COMPRESSED
        raise PacketError(f"no ZipLine EtherType for {type(record).__name__}")

    @staticmethod
    def _pack_fields(layout: _FieldLayout, prefix: int, body: int, deviation: int) -> bytes:
        for name, value, bits in (
            ("prefix", prefix, layout.prefix_bits),
            ("body", body, layout.body_bits),
            ("deviation", deviation, layout.deviation_bits),
        ):
            if value < 0 or (bits == 0 and value) or (bits and value >> bits):
                raise PacketError(f"{name} value {value:#x} does not fit in {bits} bits")
        value = prefix
        value = (value << layout.body_bits) | body
        value = (value << layout.deviation_bits) | deviation
        value <<= layout.padding_bits
        return value.to_bytes(layout.total_bytes, "big")

    # -- payload -> record --------------------------------------------------------

    def unpack_uncompressed(self, payload: bytes) -> UncompressedRecord:
        """Parse a type-2 payload into an :class:`UncompressedRecord`."""
        prefix, basis, deviation = self._unpack_fields(self._type2_layout, payload)
        return UncompressedRecord(
            prefix=prefix,
            basis=basis,
            deviation=deviation,
            prefix_bits=self._transform.prefix_bits,
            basis_bits=self._transform.basis_bits,
            deviation_bits=self._transform.deviation_bits,
            alignment_padding_bits=self._type2_layout.padding_bits,
        )

    def unpack_compressed(self, payload: bytes) -> CompressedRecord:
        """Parse a type-3 payload into a :class:`CompressedRecord`."""
        prefix, identifier, deviation = self._unpack_fields(self._type3_layout, payload)
        return CompressedRecord(
            prefix=prefix,
            identifier=identifier,
            deviation=deviation,
            prefix_bits=self._transform.prefix_bits,
            identifier_bits=self._identifier_bits,
            deviation_bits=self._transform.deviation_bits,
        )

    def unpack_frame(self, frame: EthernetFrame) -> GDRecord:
        """Parse a ZipLine frame (type 2 or 3) into its record."""
        kind = classify_frame(frame)
        if kind is PacketKind.PROCESSED_UNCOMPRESSED:
            return self.unpack_uncompressed(frame.payload)
        if kind is PacketKind.PROCESSED_COMPRESSED:
            return self.unpack_compressed(frame.payload)
        raise PacketError(
            f"frame with EtherType {EtherType.name(frame.ethertype)} is not a "
            "processed ZipLine packet"
        )

    def _unpack_fields(
        self, layout: _FieldLayout, payload: bytes
    ) -> Tuple[int, int, int]:
        if len(payload) != layout.total_bytes:
            raise PacketError(
                f"payload of {len(payload)} bytes does not match the expected "
                f"{layout.total_bytes}-byte layout"
            )
        value = int.from_bytes(payload, "big")
        value >>= layout.padding_bits
        deviation = value & mask(layout.deviation_bits)
        value >>= layout.deviation_bits
        body = value & mask(layout.body_bits)
        value >>= layout.body_bits
        prefix = value & mask(layout.prefix_bits) if layout.prefix_bits else 0
        return prefix, body, deviation

    # -- frame helpers ---------------------------------------------------------------

    def build_frame(
        self,
        record: GDRecord,
        destination,
        source,
    ) -> EthernetFrame:
        """Build a complete type-2/3 Ethernet frame for a record."""
        return EthernetFrame(
            destination=destination,
            source=source,
            ethertype=self.ethertype_for_record(record),
            payload=self.pack_record(record),
        )
