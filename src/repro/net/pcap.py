"""Minimal pcap (libpcap classic format) reader and writer.

The paper converts its datasets into pcap traces of Ethernet packets and
replays them through the switch.  The reproduction does the same: the
workload generators can persist traces as standard pcap files (readable by
tcpdump/Wireshark), and the replay machinery can load them back.  Writing produces the classic
little-endian format with the Ethernet link type, in either microsecond or
nanosecond resolution; both endiannesses and both resolutions are accepted
on read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from repro.exceptions import TraceError

__all__ = ["PcapPacket", "PcapWriter", "PcapReader", "write_pcap", "read_pcap"]

#: Standard libpcap magic (microsecond resolution, writer-native byte order).
_MAGIC_US = 0xA1B2C3D4
#: Nanosecond-resolution variant of the magic.
_MAGIC_NS = 0xA1B23C4D
#: Link type for Ethernet.
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapPacket:
    """One captured packet: a timestamp (seconds, float) and raw bytes."""

    timestamp: float
    data: bytes

    @property
    def length(self) -> int:
        """Captured length in bytes."""
        return len(self.data)


class PcapWriter:
    """Write packets into a classic pcap file.

    ``nanosecond=True`` selects the nanosecond-resolution variant of the
    format (magic ``0xA1B23C4D``, as produced by ``tcpdump --nano``); the
    sub-second field of every record then carries nanoseconds instead of
    microseconds.  Readers — including :class:`PcapReader` — detect the
    variant from the magic.

    Timestamps are float64 seconds, so full nanosecond precision is only
    available for timestamps below ~10^7 s (float64 resolves ~238 ns at
    epoch scale).  The replay machinery stamps traces from t = 0, where
    the precision is exact; rewriting epoch-stamped captures keeps the
    classic format's microsecond fidelity.

    Usage::

        with PcapWriter(path) as writer:
            writer.write(timestamp, frame_bytes)
    """

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        snaplen: int = 65535,
        nanosecond: bool = False,
    ):
        if snaplen <= 0:
            raise TraceError(f"snaplen must be positive, got {snaplen}")
        self._snaplen = snaplen
        self._nanosecond = nanosecond
        self._fraction_scale = 1_000_000_000 if nanosecond else 1_000_000
        self._owns_handle = isinstance(target, (str, Path))
        self._handle: BinaryIO = (
            open(target, "wb") if self._owns_handle else target  # type: ignore[arg-type]
        )
        self._packets_written = 0
        self._write_global_header()

    def _write_global_header(self) -> None:
        header = _GLOBAL_HEADER.pack(
            _MAGIC_NS if self._nanosecond else _MAGIC_US,
            2,  # version major
            4,  # version minor
            0,  # thiszone
            0,  # sigfigs
            self._snaplen,
            LINKTYPE_ETHERNET,
        )
        self._handle.write(header)

    @property
    def packets_written(self) -> int:
        """Number of packet records written so far."""
        return self._packets_written

    @property
    def nanosecond(self) -> bool:
        """True when the writer produces the nanosecond-resolution format."""
        return self._nanosecond

    def write(self, timestamp: float, data: bytes) -> None:
        """Append one packet record."""
        if timestamp < 0:
            raise TraceError(f"timestamp must be non-negative, got {timestamp}")
        seconds = int(timestamp)
        fraction = int(round((timestamp - seconds) * self._fraction_scale))
        if fraction >= self._fraction_scale:
            seconds += 1
            fraction -= self._fraction_scale
        captured = data[: self._snaplen]
        self._handle.write(
            _RECORD_HEADER.pack(seconds, fraction, len(captured), len(data))
        )
        self._handle.write(captured)
        self._packets_written += 1

    def write_packets(self, packets: Iterable[PcapPacket]) -> int:
        """Append many packets; returns how many were written."""
        count = 0
        for packet in packets:
            self.write(packet.timestamp, packet.data)
            count += 1
        return count

    def close(self) -> None:
        """Flush and close the underlying file (if owned)."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PcapReader:
    """Read packets from a pcap file (classic format, either endianness)."""

    def __init__(self, source: Union[str, Path, BinaryIO]):
        self._owns_handle = isinstance(source, (str, Path))
        self._handle: BinaryIO = (
            open(source, "rb") if self._owns_handle else source  # type: ignore[arg-type]
        )
        self._byte_order, self._nanoseconds, self.link_type = self._read_global_header()

    @property
    def nanosecond(self) -> bool:
        """True when the file uses the nanosecond-resolution magic."""
        return self._nanoseconds

    def _read_global_header(self) -> Tuple[str, bool, int]:
        raw = self._handle.read(_GLOBAL_HEADER.size)
        if len(raw) != _GLOBAL_HEADER.size:
            raise TraceError("pcap file too short to contain a global header")
        (magic,) = struct.unpack("<I", raw[:4])
        if magic in (_MAGIC_US, _MAGIC_NS):
            byte_order = "<"
        else:
            (magic_be,) = struct.unpack(">I", raw[:4])
            if magic_be not in (_MAGIC_US, _MAGIC_NS):
                raise TraceError(f"unrecognised pcap magic 0x{magic:08x}")
            magic = magic_be
            byte_order = ">"
        nanoseconds = magic == _MAGIC_NS
        fields = struct.unpack(byte_order + "IHHiIII", raw)
        link_type = fields[6]
        return byte_order, nanoseconds, link_type

    def __iter__(self) -> Iterator[PcapPacket]:
        record = struct.Struct(self._byte_order + "IIII")
        divisor = 1_000_000_000 if self._nanoseconds else 1_000_000
        while True:
            header = self._handle.read(record.size)
            if not header:
                break
            if len(header) != record.size:
                raise TraceError("truncated pcap record header")
            seconds, fraction, captured_length, _original_length = record.unpack(header)
            data = self._handle.read(captured_length)
            if len(data) != captured_length:
                raise TraceError("truncated pcap packet data")
            yield PcapPacket(timestamp=seconds + fraction / divisor, data=data)

    def read_all(self) -> List[PcapPacket]:
        """Read every packet into a list."""
        return list(iter(self))

    def close(self) -> None:
        """Close the underlying file (if owned)."""
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[PcapPacket],
    snaplen: int = 65535,
    nanosecond: bool = False,
) -> int:
    """Write an iterable of packets to ``path``; returns the packet count."""
    with PcapWriter(path, snaplen=snaplen, nanosecond=nanosecond) as writer:
        return writer.write_packets(packets)


def read_pcap(path: Union[str, Path]) -> List[PcapPacket]:
    """Read every packet from ``path``."""
    with PcapReader(path) as reader:
        return reader.read_all()
