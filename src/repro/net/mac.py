"""MAC address value type used by the Ethernet framing layer."""

from __future__ import annotations

import random
import re
from typing import Optional, Union

from repro.exceptions import PacketError

__all__ = ["MacAddress", "BROADCAST", "ZERO"]

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2}[:-]){5}[0-9A-Fa-f]{2}$")


class MacAddress:
    """A 48-bit IEEE 802 MAC address.

    Accepts the usual representations (colon/dash separated strings, raw
    6-byte strings, integers) and normalises to 6 bytes internally.
    Instances are immutable and hashable so they can key forwarding tables.
    """

    __slots__ = ("_octets",)

    def __init__(self, value: Union[str, bytes, bytearray, int, "MacAddress"]):
        if isinstance(value, MacAddress):
            self._octets = value._octets
            return
        if isinstance(value, str):
            if not _MAC_RE.match(value):
                raise PacketError(f"invalid MAC address string {value!r}")
            cleaned = value.replace("-", ":")
            self._octets = bytes(int(part, 16) for part in cleaned.split(":"))
            return
        if isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise PacketError(
                    f"MAC address requires exactly 6 bytes, got {len(value)}"
                )
            self._octets = bytes(value)
            return
        if isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise PacketError(f"MAC address integer {value:#x} out of range")
            self._octets = value.to_bytes(6, "big")
            return
        raise PacketError(f"unsupported MAC address type {type(value).__name__}")

    # -- constructors -------------------------------------------------------

    @classmethod
    def random_unicast(cls, rng: Optional[random.Random] = None) -> "MacAddress":
        """A random locally administered unicast address (x2:xx:xx:xx:xx:xx)."""
        rng = rng or random
        octets = bytearray(rng.getrandbits(8) for _ in range(6))
        octets[0] = (octets[0] & 0b11111100) | 0b00000010
        return cls(bytes(octets))

    # -- accessors -----------------------------------------------------------

    @property
    def octets(self) -> bytes:
        """The 6 raw bytes."""
        return self._octets

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._octets == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool(self._octets[0] & 1)

    @property
    def is_unicast(self) -> bool:
        """True for unicast (non-multicast) addresses."""
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        """True when the locally administered bit is set."""
        return bool(self._octets[0] & 2)

    def to_int(self) -> int:
        """The address as a 48-bit integer."""
        return int.from_bytes(self._octets, "big")

    # -- dunder plumbing ------------------------------------------------------

    def __bytes__(self) -> bytes:
        return self._octets

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._octets == other._octets
        if isinstance(other, (bytes, bytearray)):
            return self._octets == bytes(other)
        if isinstance(other, str):
            try:
                return self == MacAddress(other)
            except PacketError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._octets)

    def __str__(self) -> str:
        return ":".join(f"{octet:02x}" for octet in self._octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


#: The Ethernet broadcast address.
BROADCAST = MacAddress(b"\xff" * 6)

#: The all-zero address (used as a placeholder in generated traces).
ZERO = MacAddress(b"\x00" * 6)
