"""Layer-2 framing substrate: MAC addresses, Ethernet frames, ZipLine packets, pcap."""

from repro.net.checksum import ethernet_fcs, internet_checksum, verify_ethernet_fcs
from repro.net.ethernet import (
    ETHERNET_FCS_BYTES,
    ETHERNET_HEADER_BYTES,
    ETHERNET_IFG_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
    ETHERNET_PREAMBLE_BYTES,
    EthernetFrame,
    EtherType,
    frame_wire_bytes,
    wire_overhead_bytes,
)
from repro.net.mac import BROADCAST, ZERO, MacAddress
from repro.net.packets import PacketKind, ZipLinePacketCodec, classify_frame
from repro.net.pcap import PcapPacket, PcapReader, PcapWriter, read_pcap, write_pcap

__all__ = [
    "ethernet_fcs",
    "internet_checksum",
    "verify_ethernet_fcs",
    "ETHERNET_FCS_BYTES",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_IFG_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_PREAMBLE_BYTES",
    "EthernetFrame",
    "EtherType",
    "frame_wire_bytes",
    "wire_overhead_bytes",
    "BROADCAST",
    "ZERO",
    "MacAddress",
    "PacketKind",
    "ZipLinePacketCodec",
    "classify_frame",
    "PcapPacket",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]
