"""Minimal IPv4 and UDP header construction and parsing.

The DNS workload generator emits well-formed Ethernet/IPv4/UDP/DNS packets
so its pcap output looks like the campus trace the paper filtered.  Only the
features that workload needs are implemented: fixed 20-byte IPv4 headers
(no options), UDP with the standard pseudo-header checksum, and parsing of
both for the round-trip tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import PacketError
from repro.net.checksum import internet_checksum

__all__ = [
    "IPV4_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "PROTO_UDP",
    "ipv4_address_to_bytes",
    "ipv4_address_to_str",
    "Ipv4Header",
    "UdpHeader",
    "build_udp_packet",
    "parse_udp_packet",
]

IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
PROTO_UDP = 17


def ipv4_address_to_bytes(address: str) -> bytes:
    """Convert dotted-quad notation to 4 bytes."""
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"invalid IPv4 address {address!r}")
    try:
        octets = [int(part) for part in parts]
    except ValueError:
        raise PacketError(f"invalid IPv4 address {address!r}") from None
    if any(not 0 <= octet <= 255 for octet in octets):
        raise PacketError(f"invalid IPv4 address {address!r}")
    return bytes(octets)


def ipv4_address_to_str(address: bytes) -> str:
    """Convert 4 raw bytes to dotted-quad notation."""
    if len(address) != 4:
        raise PacketError(f"IPv4 address requires 4 bytes, got {len(address)}")
    return ".".join(str(octet) for octet in address)


@dataclass(frozen=True)
class Ipv4Header:
    """A fixed-size (no options) IPv4 header."""

    source: str
    destination: str
    payload_length: int
    protocol: int = PROTO_UDP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    def to_bytes(self) -> bytes:
        """Serialise the header with a correct checksum."""
        if self.payload_length < 0 or self.payload_length > 0xFFFF - IPV4_HEADER_BYTES:
            raise PacketError(f"invalid IPv4 payload length {self.payload_length}")
        total_length = IPV4_HEADER_BYTES + self.payload_length
        version_ihl = (4 << 4) | 5
        header_without_checksum = struct.pack(
            ">BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ipv4_address_to_bytes(self.source),
            ipv4_address_to_bytes(self.destination),
        )
        checksum = internet_checksum(header_without_checksum)
        return header_without_checksum[:10] + struct.pack(">H", checksum) + header_without_checksum[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Ipv4Header", bytes]:
        """Parse a header; returns ``(header, payload)``."""
        if len(data) < IPV4_HEADER_BYTES:
            raise PacketError(f"IPv4 header requires 20 bytes, got {len(data)}")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise PacketError("not an IPv4 packet")
        ihl = (version_ihl & 0xF) * 4
        if ihl < IPV4_HEADER_BYTES or len(data) < ihl:
            raise PacketError("truncated IPv4 header")
        total_length = struct.unpack(">H", data[2:4])[0]
        protocol = data[9]
        source = ipv4_address_to_str(data[12:16])
        destination = ipv4_address_to_str(data[16:20])
        payload = data[ihl:total_length]
        header = cls(
            source=source,
            destination=destination,
            payload_length=total_length - ihl,
            protocol=protocol,
            ttl=data[8],
            identification=struct.unpack(">H", data[4:6])[0],
        )
        return header, payload


@dataclass(frozen=True)
class UdpHeader:
    """A UDP header; the checksum is computed over the pseudo-header."""

    source_port: int
    destination_port: int
    payload_length: int

    def to_bytes(self, source_ip: str, destination_ip: str, payload: bytes) -> bytes:
        """Serialise the header (with checksum) for the given payload."""
        if len(payload) != self.payload_length:
            raise PacketError(
                f"payload of {len(payload)} bytes does not match declared "
                f"length {self.payload_length}"
            )
        length = UDP_HEADER_BYTES + self.payload_length
        header_no_checksum = struct.pack(
            ">HHHH", self.source_port, self.destination_port, length, 0
        )
        pseudo = (
            ipv4_address_to_bytes(source_ip)
            + ipv4_address_to_bytes(destination_ip)
            + struct.pack(">BBH", 0, PROTO_UDP, length)
        )
        checksum = internet_checksum(pseudo + header_no_checksum + payload)
        if checksum == 0:
            checksum = 0xFFFF
        return struct.pack(
            ">HHHH", self.source_port, self.destination_port, length, checksum
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["UdpHeader", bytes]:
        """Parse a UDP datagram; returns ``(header, payload)``."""
        if len(data) < UDP_HEADER_BYTES:
            raise PacketError(f"UDP header requires 8 bytes, got {len(data)}")
        source_port, destination_port, length, _checksum = struct.unpack(
            ">HHHH", data[:UDP_HEADER_BYTES]
        )
        if length < UDP_HEADER_BYTES or len(data) < length:
            raise PacketError("truncated UDP datagram")
        payload = data[UDP_HEADER_BYTES:length]
        return (
            cls(
                source_port=source_port,
                destination_port=destination_port,
                payload_length=length - UDP_HEADER_BYTES,
            ),
            payload,
        )


def build_udp_packet(
    source_ip: str,
    destination_ip: str,
    source_port: int,
    destination_port: int,
    payload: bytes,
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """Build a complete IPv4/UDP packet (starting at the IPv4 header)."""
    udp = UdpHeader(
        source_port=source_port,
        destination_port=destination_port,
        payload_length=len(payload),
    )
    udp_bytes = udp.to_bytes(source_ip, destination_ip, payload) + payload
    ipv4 = Ipv4Header(
        source=source_ip,
        destination=destination_ip,
        payload_length=len(udp_bytes),
        ttl=ttl,
        identification=identification,
    )
    return ipv4.to_bytes() + udp_bytes


def parse_udp_packet(data: bytes) -> Tuple[Ipv4Header, UdpHeader, bytes]:
    """Parse an IPv4/UDP packet into its headers and payload."""
    ipv4, ip_payload = Ipv4Header.from_bytes(data)
    if ipv4.protocol != PROTO_UDP:
        raise PacketError(f"not a UDP packet (protocol {ipv4.protocol})")
    udp, payload = UdpHeader.from_bytes(ip_payload)
    return ipv4, udp, payload
