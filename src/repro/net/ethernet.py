"""Ethernet (layer 2) framing.

ZipLine operates directly on Ethernet frames ("we settled on Ethernet-based
framing to provide compatibility with regular Ethernet network cards"), so
the reproduction's traffic is modelled at the same layer.  The
:class:`EthernetFrame` type covers what the data-plane model needs: parsing
and serialising the 14-byte header, EtherType dispatch, minimum-size
padding, and the size accounting (preamble, inter-frame gap, FCS) that the
throughput model in :mod:`repro.perfmodel` relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.exceptions import PacketError
from repro.net.checksum import ethernet_fcs
from repro.net.mac import MacAddress

__all__ = [
    "EtherType",
    "EthernetFrame",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_FCS_BYTES",
    "ETHERNET_PREAMBLE_BYTES",
    "ETHERNET_IFG_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "ETHERNET_MAX_STANDARD_PAYLOAD",
    "wire_overhead_bytes",
    "frame_wire_bytes",
]

#: Destination + source + EtherType.
ETHERNET_HEADER_BYTES = 14
#: Frame check sequence appended to every frame.
ETHERNET_FCS_BYTES = 4
#: Preamble + start-of-frame delimiter transmitted before every frame.
ETHERNET_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap (12 byte times).
ETHERNET_IFG_BYTES = 12
#: Minimum frame size (header + payload + FCS) on the wire.
ETHERNET_MIN_FRAME_BYTES = 64
#: Maximum standard (non-jumbo) payload size.
ETHERNET_MAX_STANDARD_PAYLOAD = 1500


class EtherType:
    """Well-known EtherType values plus the ZipLine experiment-local ones.

    The paper defines three packet types; the reproduction distinguishes
    them on the wire with dedicated EtherTypes drawn from the
    IEEE-reserved "local experimental" range so that unmodified traffic
    (type 1) keeps its original EtherType.
    """

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD
    #: Local experimental EtherType 1: processed, uncompressed (type 2).
    ZIPLINE_UNCOMPRESSED = 0x88B5
    #: Local experimental EtherType 2: processed, compressed (type 3).
    ZIPLINE_COMPRESSED = 0x88B6

    _NAMES = {
        IPV4: "IPv4",
        ARP: "ARP",
        VLAN: "VLAN",
        IPV6: "IPv6",
        ZIPLINE_UNCOMPRESSED: "ZipLine/uncompressed",
        ZIPLINE_COMPRESSED: "ZipLine/compressed",
    }

    @classmethod
    def name(cls, value: int) -> str:
        """Readable name for an EtherType value."""
        return cls._NAMES.get(value, f"0x{value:04x}")


def wire_overhead_bytes() -> int:
    """Per-frame overhead that occupies the link but is not payload.

    Preamble + inter-frame gap + FCS; the 14-byte header is counted as part
    of the frame itself.
    """
    return ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES + ETHERNET_FCS_BYTES


def frame_wire_bytes(frame_bytes: int) -> int:
    """Total link occupancy of a frame of ``frame_bytes`` (header + payload).

    Applies minimum-size padding and adds preamble, FCS and inter-frame gap —
    the denominator of every line-rate computation in the throughput model.
    """
    if frame_bytes < 0:
        raise PacketError(f"frame size must be non-negative, got {frame_bytes}")
    padded = max(frame_bytes + ETHERNET_FCS_BYTES, ETHERNET_MIN_FRAME_BYTES)
    return padded + ETHERNET_PREAMBLE_BYTES + ETHERNET_IFG_BYTES


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame: header fields plus an opaque payload.

    The FCS is not stored; it is computed on demand by :meth:`fcs` and
    appended by :meth:`to_bytes` when requested, mirroring how NICs handle
    it in practice.
    """

    destination: MacAddress
    source: MacAddress
    ethertype: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise PacketError(f"EtherType {self.ethertype:#x} out of range")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise PacketError(
                f"payload must be bytes, got {type(self.payload).__name__}"
            )
        object.__setattr__(self, "payload", bytes(self.payload))
        object.__setattr__(self, "destination", MacAddress(self.destination))
        object.__setattr__(self, "source", MacAddress(self.source))

    # -- sizes ------------------------------------------------------------

    @property
    def header_bytes(self) -> int:
        """Size of the Ethernet header (always 14)."""
        return ETHERNET_HEADER_BYTES

    @property
    def payload_bytes(self) -> int:
        """Size of the payload."""
        return len(self.payload)

    @property
    def frame_bytes(self) -> int:
        """Header + payload (no FCS, no padding)."""
        return ETHERNET_HEADER_BYTES + len(self.payload)

    @property
    def wire_bytes(self) -> int:
        """Total link occupancy including preamble, padding, FCS and IFG."""
        return frame_wire_bytes(self.frame_bytes)

    # -- serialisation -------------------------------------------------------

    def to_bytes(self, include_fcs: bool = False, pad: bool = False) -> bytes:
        """Serialise the frame.

        ``pad`` zero-pads the payload so the frame (incl. FCS) reaches the
        64-byte Ethernet minimum; ``include_fcs`` appends the computed FCS.
        """
        header = bytes(self.destination) + bytes(self.source) + struct.pack(
            ">H", self.ethertype
        )
        body = header + self.payload
        if pad:
            minimum_without_fcs = ETHERNET_MIN_FRAME_BYTES - ETHERNET_FCS_BYTES
            if len(body) < minimum_without_fcs:
                body = body + b"\x00" * (minimum_without_fcs - len(body))
        if include_fcs:
            body = body + struct.pack(">I", ethernet_fcs(body))
        return body

    def fcs(self) -> int:
        """Frame check sequence of the unpadded frame."""
        return ethernet_fcs(self.to_bytes(include_fcs=False, pad=False))

    @classmethod
    def from_bytes(cls, data: bytes, has_fcs: bool = False) -> "EthernetFrame":
        """Parse a frame from raw bytes.

        When ``has_fcs`` is true, the trailing 4 bytes are stripped (they are
        *not* verified here; the parser model in :mod:`repro.tofino` decides
        what to do with bad frames).
        """
        if has_fcs:
            if len(data) < ETHERNET_HEADER_BYTES + ETHERNET_FCS_BYTES:
                raise PacketError(
                    f"frame of {len(data)} bytes is too short to contain an FCS"
                )
            data = data[:-ETHERNET_FCS_BYTES]
        if len(data) < ETHERNET_HEADER_BYTES:
            raise PacketError(
                f"frame of {len(data)} bytes is shorter than the Ethernet header"
            )
        destination = MacAddress(data[0:6])
        source = MacAddress(data[6:12])
        (ethertype,) = struct.unpack(">H", data[12:14])
        return cls(
            destination=destination,
            source=source,
            ethertype=ethertype,
            payload=data[14:],
        )

    # -- convenience ------------------------------------------------------------

    def with_payload(self, payload: bytes, ethertype: Optional[int] = None) -> "EthernetFrame":
        """A copy of this frame with a different payload (and EtherType)."""
        return replace(
            self,
            payload=payload,
            ethertype=self.ethertype if ethertype is None else ethertype,
        )

    def reversed_direction(self) -> "EthernetFrame":
        """A copy with source and destination swapped (for reply traffic)."""
        return replace(self, destination=self.source, source=self.destination)

    def __repr__(self) -> str:
        return (
            f"EthernetFrame(dst={self.destination}, src={self.source}, "
            f"ethertype={EtherType.name(self.ethertype)}, "
            f"payload={len(self.payload)}B)"
        )
