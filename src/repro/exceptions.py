"""Exception hierarchy shared by every ``repro`` subpackage.

All library-specific errors derive from :class:`ReproError` so that callers
can distinguish reproduction-library failures from generic Python errors with
a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CodingError(ReproError):
    """Raised for invalid coding-theory parameters (CRC, Hamming, GD)."""


class ChunkSizeError(CodingError):
    """Raised when a data chunk does not match the configured chunk size."""


class BackendError(CodingError):
    """Raised for unknown or unavailable codec backends."""


class DictionaryError(ReproError):
    """Raised for invalid basis-dictionary operations."""


class PacketError(ReproError):
    """Raised when a packet cannot be built, parsed, or validated."""


class ParserError(PacketError):
    """Raised by the data-plane parser when a header cannot be extracted."""


class TableError(ReproError):
    """Raised for invalid match-action table operations."""


class RegisterError(ReproError):
    """Raised for out-of-bounds or misconfigured register access."""


class PipelineError(ReproError):
    """Raised when a pipeline violates a hardware constraint."""


class ConstraintViolation(PipelineError):
    """Raised when a P4 program model exceeds a Tofino resource budget."""


class ControlPlaneError(ReproError):
    """Raised for control-plane failures (ID pool exhaustion, bad digests)."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulator for scheduling errors."""


class TraceError(ReproError):
    """Raised when a trace file or trace object is malformed."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generation parameters."""


class ReplayError(ReproError):
    """Raised for invalid replay/emulation configurations or runs."""


class TopologyError(ReproError):
    """Raised for invalid topology graphs, specs, or flow configurations."""
