"""Scenario-matrix experiments: declarative sweeps, sharded execution.

The paper's evaluation is a collection of sweeps — compression ratio and
learning delay across datasets, table sizes, chunk sizes and loss regimes.
This package turns one sweep into one artefact:

* :class:`~repro.experiments.spec.ExperimentSpec` — a validated JSON/TOML
  document of ``base`` parameters plus ``axes`` whose cross-product is the
  scenario matrix (with targeted ``overrides``);
* :class:`~repro.experiments.runner.MatrixRunner` — executes the matrix,
  optionally sharded across worker processes; every scenario is seeded
  deterministically from the spec, so parallel and sequential sweeps
  produce byte-identical reports;
* :class:`~repro.experiments.runner.MatrixResult` — the folded outcome:
  per-scenario replay reports, per-axis group-bys (mean ± 95 % CI), and
  CSV/JSON export.

Quick start::

    from repro.experiments import ExperimentSpec, MatrixRunner

    spec = ExperimentSpec.from_dict({
        "name": "loss-sweep",
        "base": {"workload": "synthetic", "chunks": 2000, "bases": 16},
        "axes": {"scenario": ["static", "dynamic"], "loss": [0.0, 0.02]},
    })
    result = MatrixRunner(spec, workers=4).run()
    print(result.render(group_axes=["scenario"]))
    result.to_csv("sweep.csv")

The CLI front-end is ``repro experiment --spec spec.json --workers N``;
preset specs live under ``examples/specs/``.
"""

from repro.experiments.spec import (
    DEFAULT_PARAMETERS,
    PARAMETERS,
    ExperimentSpec,
    ExperimentSpecError,
    ParameterSpec,
    Scenario,
)
from repro.experiments.runner import (
    MatrixResult,
    MatrixRunner,
    ScenarioResult,
    run_scenario,
    scenario_metric,
)

__all__ = [
    "DEFAULT_PARAMETERS",
    "PARAMETERS",
    "ExperimentSpec",
    "ExperimentSpecError",
    "ParameterSpec",
    "Scenario",
    "MatrixResult",
    "MatrixRunner",
    "ScenarioResult",
    "run_scenario",
    "scenario_metric",
]
