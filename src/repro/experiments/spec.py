"""Declarative scenario matrices: axes in, a cross-product of runs out.

The paper's headline results are *sweeps* — compression ratio and learning
delay across traces, table sizes, chunk sizes and loss regimes.  An
:class:`ExperimentSpec` captures one sweep declaratively instead of as a
shell loop:

* ``base`` — parameter values shared by every scenario (workload, chunk
  count, replay rate, …);
* ``axes`` — the swept dimensions, each a parameter name mapped to the list
  of values it takes; the matrix is the cross-product of all axes;
* ``overrides`` — targeted adjustments (``when`` an axis point matches,
  ``set`` these parameters), for the handful of combinations that need a
  tweak without adding a whole axis.

Every parameter is validated against the known parameter table
(:data:`PARAMETERS`), so a typo like ``"los": [0.1]`` is rejected at load
time rather than silently running an ideal link.  Expansion is fully
deterministic: axes are iterated in sorted name order, values in listed
order, and every scenario derives a stable seed from the spec seed and its
own identifier — the property the sharded runner relies on to make parallel
and sequential sweeps byte-identical.

>>> spec = ExperimentSpec.from_dict({
...     "name": "demo",
...     "base": {"workload": "synthetic", "chunks": 100, "bases": 4},
...     "axes": {"scenario": ["static", "dynamic"], "loss": [0.0, 0.02]},
... })
>>> spec.matrix_size
4
>>> [s.scenario_id for s in spec.expand()][:2]
['loss=0.0/scenario=static', 'loss=0.0/scenario=dynamic']
>>> spec.expand()[0].params["chunks"]
100

Specs load from JSON always and from TOML when the interpreter ships
``tomllib`` (Python ≥ 3.11); see :meth:`ExperimentSpec.from_file`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.replay.harness import ReplayTopology
from repro.topology.spec import derive_seed
from repro.zipline.deployment import DeploymentScenario

__all__ = [
    "ExperimentSpecError",
    "ParameterSpec",
    "PARAMETERS",
    "DEFAULT_PARAMETERS",
    "Scenario",
    "ExperimentSpec",
]


class ExperimentSpecError(ReproError):
    """An experiment spec failed validation."""


def _positive_int(name: str, value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ExperimentSpecError(f"{name} must be a positive integer, got {value!r}")
    return value


def _non_negative_int(name: str, value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ExperimentSpecError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    return value


def _positive_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ExperimentSpecError(f"{name} must be a positive number, got {value!r}")
    return float(value)


def _non_negative_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise ExperimentSpecError(
            f"{name} must be a non-negative number, got {value!r}"
        )
    return float(value)


def _probability(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentSpecError(f"{name} must be a number in [0, 1], got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ExperimentSpecError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def _choice(options: Sequence[str]):
    def validate(name: str, value: Any) -> str:
        if not isinstance(value, str) or value not in options:
            raise ExperimentSpecError(
                f"{name} must be one of {', '.join(options)}; got {value!r}"
            )
        return value

    return validate


def _string(name: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ExperimentSpecError(f"{name} must be a non-empty string, got {value!r}")
    return value


def _seed(name: str, value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ExperimentSpecError(f"{name} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class ParameterSpec:
    """One known scenario parameter: its validator and its default."""

    name: str
    validate: Any
    default: Any
    help: str


#: Every parameter a scenario understands.  ``base``, every axis and every
#: override may only use these names; anything else is rejected at load time.
PARAMETERS: Dict[str, ParameterSpec] = {
    spec.name: spec
    for spec in (
        ParameterSpec(
            "workload", _choice(("synthetic", "dns", "thrash")), "synthetic",
            "trace generator (ignored when `trace` points at a pcap)",
        ),
        ParameterSpec("trace", _string, None, "pcap file to replay instead of a workload"),
        ParameterSpec("chunks", _positive_int, 1000, "chunks (synthetic) or queries (dns) per scenario"),
        ParameterSpec("bases", _positive_int, 16, "distinct bases of the synthetic workload"),
        ParameterSpec("names", _positive_int, 300, "distinct names of the dns workload"),
        ParameterSpec(
            "scenario",
            _choice(tuple(s.value for s in DeploymentScenario)),
            "dynamic",
            "dictionary scenario",
        ),
        ParameterSpec(
            "topology",
            _choice(tuple(t.value for t in ReplayTopology) + ("fan-in",)),
            "encoder-link-decoder",
            "replay topology (linear chains, or the fan-in graph preset)",
        ),
        ParameterSpec(
            "senders", _positive_int, 4,
            "concurrent senders sharing the encoder (topology=fan-in)",
        ),
        ParameterSpec("hops", _positive_int, 1, "emulated links in series"),
        ParameterSpec(
            "pacing", _choice(("recorded", "rate", "back-to-back")), "rate",
            "injection pacing policy",
        ),
        ParameterSpec("packet_rate", _positive_number, 1e6, "replay rate in packets/s (pacing=rate)"),
        ParameterSpec("speedup", _positive_number, 1.0, "time compression for pacing=recorded"),
        ParameterSpec("bandwidth_gbps", _positive_number, 100.0, "per-hop link bandwidth in Gbit/s"),
        ParameterSpec("propagation_us", _non_negative_number, 0.5, "per-hop propagation delay in µs"),
        ParameterSpec("queue_capacity", _non_negative_int, 0, "bounded link queue in frames (0 = unbounded)"),
        ParameterSpec("loss", _probability, 0.0, "per-packet loss probability per hop"),
        ParameterSpec("reorder", _probability, 0.0, "per-packet reorder probability per hop"),
        ParameterSpec("identifier_bits", _positive_int, 15, "identifier width t (table size 2^t)"),
        ParameterSpec("order", _positive_int, 8, "Hamming order m (chunk size)"),
        ParameterSpec(
            "control", _choice(("direct", "in-network")), "direct",
            "how installs reach the decoder (topology=fan-in)",
        ),
        ParameterSpec(
            "control_loss", _probability, 0.0,
            "control-frame loss probability (control=in-network)",
        ),
        ParameterSpec(
            "control_rate", _non_negative_number, 0,
            "control-channel pacing in commands/s (0 = unlimited; "
            "control=in-network)",
        ),
        ParameterSpec("seed", _seed, 0, "spec-level seed every scenario seed derives from"),
    )
}

#: The fully-defaulted parameter dictionary a scenario starts from.
DEFAULT_PARAMETERS: Dict[str, Any] = {
    name: spec.default for name, spec in PARAMETERS.items()
}


def _validate_parameters(
    mapping: Mapping[str, Any], where: str
) -> Dict[str, Any]:
    """Validate a parameter mapping, returning normalised values."""
    if not isinstance(mapping, Mapping):
        raise ExperimentSpecError(f"{where} must be a mapping, got {mapping!r}")
    validated: Dict[str, Any] = {}
    for name, value in mapping.items():
        if name not in PARAMETERS:
            known = ", ".join(sorted(PARAMETERS))
            raise ExperimentSpecError(
                f"{where}: unknown parameter {name!r}; known parameters: {known}"
            )
        if name == "trace" and value is None:
            validated[name] = None
            continue
        validated[name] = PARAMETERS[name].validate(name, value)
    return validated


def _scenario_seed(spec_name: str, spec_seed: int, scenario_id: str) -> int:
    """Stable per-scenario seed: spec seed mixed with the scenario identity.

    Delegates to the repository-wide CRC-32 scheme
    (:func:`repro.topology.spec.derive_seed` — stable across processes,
    platforms and Python versions, so sharded workers derive the same seed
    the sequential runner does; per-flow seeds inside a fan-in scenario
    derive from the same function).
    """
    return derive_seed(spec_name, spec_seed, scenario_id)


@dataclass(frozen=True)
class Scenario:
    """One fully-resolved point of the experiment matrix.

    ``axes`` holds only the swept values (the columns of the aggregate
    table); ``params`` is the complete parameter dictionary the runner
    executes; ``seed`` is the derived per-scenario seed.
    """

    index: int
    scenario_id: str
    axes: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (used by exports and the ``--list`` mode)."""
        return {
            "index": self.index,
            "scenario_id": self.scenario_id,
            "axes": dict(self.axes),
            "params": dict(self.params),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class _Override:
    """``set`` these parameters ``when`` the axis point matches."""

    when: Dict[str, Any]
    set: Dict[str, Any]

    def matches(self, axes: Mapping[str, Any]) -> bool:
        return all(axes.get(name) == value for name, value in self.when.items())


class ExperimentSpec:
    """A named, validated scenario matrix.

    Build one with :meth:`from_dict` / :meth:`from_file`, or directly::

        ExperimentSpec(name, base={...}, axes={...}, overrides=[...])
    """

    def __init__(
        self,
        name: str,
        base: Optional[Mapping[str, Any]] = None,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        overrides: Optional[Iterable[Mapping[str, Any]]] = None,
    ):
        self.name = _string("spec name", name)
        self.base = _validate_parameters(base or {}, "base")
        self.axes: Dict[str, List[Any]] = {}
        for axis, values in (axes or {}).items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise ExperimentSpecError(
                    f"axis {axis!r} must map to a list of values, got {values!r}"
                )
            if not values:
                raise ExperimentSpecError(f"axis {axis!r} has no values")
            if axis not in PARAMETERS:
                known = ", ".join(sorted(PARAMETERS))
                raise ExperimentSpecError(
                    f"unknown axis {axis!r}; known parameters: {known}"
                )
            # Validate before deduplicating so values that normalise to the
            # same point (0 vs 0.0) cannot expand into duplicate scenarios.
            validated_values = []
            seen = set()
            for value in values:
                validated = PARAMETERS[axis].validate(axis, value)
                key = repr(validated)
                if key in seen:
                    raise ExperimentSpecError(
                        f"axis {axis!r} lists the value {value!r} twice"
                    )
                seen.add(key)
                validated_values.append(validated)
            self.axes[axis] = validated_values
        self.overrides: List[_Override] = []
        for index, entry in enumerate(overrides or []):
            if not isinstance(entry, Mapping) or set(entry) - {"when", "set"}:
                raise ExperimentSpecError(
                    f"override {index} must be a mapping with 'when' and 'set' keys"
                )
            when = _validate_parameters(entry.get("when", {}), f"override {index} when")
            for axis in when:
                if axis not in self.axes:
                    raise ExperimentSpecError(
                        f"override {index} matches on {axis!r}, which is not an axis"
                    )
            if not entry.get("set"):
                raise ExperimentSpecError(f"override {index} sets nothing")
            assigned = _validate_parameters(entry["set"], f"override {index} set")
            self.overrides.append(_Override(when=when, set=assigned))

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain dictionary (the JSON/TOML document)."""
        if not isinstance(data, Mapping):
            raise ExperimentSpecError(f"spec must be a mapping, got {data!r}")
        unknown = set(data) - {"name", "base", "axes", "overrides"}
        if unknown:
            raise ExperimentSpecError(
                f"unknown spec keys: {', '.join(sorted(unknown))} "
                "(expected name, base, axes, overrides)"
            )
        return cls(
            name=data.get("name", "experiment"),
            base=data.get("base"),
            axes=data.get("axes"),
            overrides=data.get("overrides"),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        target = Path(path)
        if not target.exists():
            raise ExperimentSpecError(f"spec file {target} does not exist")
        text = target.read_bytes()
        if target.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11: JSON is the portable format.
                raise ExperimentSpecError(
                    "TOML specs need Python >= 3.11 (tomllib); use JSON instead"
                ) from None
            try:
                document = tomllib.loads(text.decode("utf-8"))
            except tomllib.TOMLDecodeError as error:
                raise ExperimentSpecError(f"invalid TOML in {target}: {error}") from None
        else:
            try:
                document = json.loads(text)
            except json.JSONDecodeError as error:
                raise ExperimentSpecError(f"invalid JSON in {target}: {error}") from None
        return cls.from_dict(document)

    # -- expansion -------------------------------------------------------------

    @property
    def axis_names(self) -> List[str]:
        """The swept parameter names, sorted (the expansion order)."""
        return sorted(self.axes)

    @property
    def matrix_size(self) -> int:
        """Number of scenarios the cross-product expands into."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def expand(self) -> List[Scenario]:
        """The full scenario matrix, in deterministic order.

        Axes iterate in sorted name order with the *last* axis varying
        fastest (row-major over the sorted axes), so the expansion order —
        and therefore every scenario index and seed — is a pure function of
        the spec.
        """
        names = self.axis_names
        points: List[Tuple[Tuple[str, Any], ...]] = [()]
        for axis in names:
            points = [
                point + ((axis, value),)
                for point in points
                for value in self.axes[axis]
            ]
        spec_seed = self.base.get("seed", DEFAULT_PARAMETERS["seed"])
        scenarios: List[Scenario] = []
        for index, point in enumerate(points):
            axes = dict(point)
            params = dict(DEFAULT_PARAMETERS)
            params.update(self.base)
            params.update(axes)
            for override in self.overrides:
                if override.matches(axes):
                    params.update(override.set)
            scenario_id = (
                "/".join(f"{axis}={value}" for axis, value in sorted(axes.items()))
                or "point"
            )
            scenarios.append(
                Scenario(
                    index=index,
                    scenario_id=scenario_id,
                    axes=axes,
                    params=params,
                    seed=_scenario_seed(self.name, spec_seed, scenario_id),
                )
            )
        return scenarios

    def as_dict(self) -> Dict[str, Any]:
        """The validated spec as a plain dictionary (round-trips to JSON)."""
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "overrides": [
                {"when": dict(o.when), "set": dict(o.set)} for o in self.overrides
            ],
        }
