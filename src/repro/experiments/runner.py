"""Sharded execution of an experiment matrix and aggregation of its reports.

:func:`run_scenario` turns one :class:`~repro.experiments.spec.Scenario`
into a :class:`~repro.replay.harness.ReplayHarness` run and captures the
full :class:`~repro.replay.metrics.ReplayReport` as plain data.  It is a
module-level function on purpose: worker processes must be able to pickle
it, and it builds *everything* (workload, impairments, harness) from the
scenario's own parameters and seed, so where it runs — main process, forked
worker, spawned worker — cannot change the result.

:class:`MatrixRunner` fans the scenarios of a spec out across worker
processes with :mod:`multiprocessing` and reassembles the results in
scenario-index order.  Because every scenario is deterministically seeded
and self-contained, a sharded sweep produces **byte-identical** exports to
a sequential one — the property ``tests/experiments/test_runner.py``
asserts and ``benchmarks/bench_experiment_matrix.py`` measures the speedup
of.

:class:`MatrixResult` folds the per-scenario reports into the aggregate
views every sweep wants: one row per scenario, per-axis group-bys with
mean ± 95 % CI (via :func:`repro.analysis.experiment.summarize_groups`),
and CSV/JSON export for plotting.
"""

from __future__ import annotations

import csv
import io
import json
import multiprocessing
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.experiment import ExperimentResult, summarize_groups
from repro.analysis.reporting import format_table, save_results_json
from repro.core.transform import GDTransform
from repro.exceptions import ReproError
from repro.experiments.spec import ExperimentSpec, Scenario
from repro.perfmodel.linkmodel import ImpairmentModel
from repro.replay.harness import ReplayHarness
from repro.replay.sources import (
    PcapTraceSource,
    TraceSource,
    WorkloadTraceSource,
    pacing_from_name,
    stream_distinct_bases,
)
from repro.workloads import (
    DictionaryThrashWorkload,
    DnsQueryWorkload,
    SyntheticSensorWorkload,
)

__all__ = [
    "ScenarioResult",
    "MatrixResult",
    "MatrixRunner",
    "run_scenario",
    "scenario_metric",
]

#: Columns of the per-scenario summary table and the CSV export.
SUMMARY_METRICS = (
    ("ratio", "compression_ratio"),
    ("savings_%", "savings_percent"),
    ("lat_p50_us", "latency.p50"),
    ("lat_p99_us", "latency.p99"),
    ("learning_ms", "learning_time"),
    ("lost", "integrity.missing"),
    ("corrupted", "integrity.corrupted"),
)

#: Metrics rendered in microseconds / milliseconds in the summary table.
_SCALE_US = {"latency.p50", "latency.p99"}
_SCALE_MS = {"learning_time"}


def scenario_metric(report: Mapping[str, Any], metric: str) -> Optional[float]:
    """Resolve a dotted metric path inside a serialised replay report.

    ``"compression_ratio"`` reads the top-level field, ``"latency.p99"``
    descends into the latency summary, ``"integrity.missing"`` into the
    integrity verdict, and ``"metrics.counters.link0.dropped_loss"`` into
    the raw counter dump.  Returns ``None`` when any step of the path is
    absent (e.g. latency percentiles of a counters-only run).
    """
    if metric.startswith("metrics.counters."):
        counters = report.get("metrics", {}).get("counters", {})
        value = counters.get(metric[len("metrics.counters."):])
        return None if value is None else float(value)
    node: Any = report
    for part in metric.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    if node is None:
        return None
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise ReproError(f"metric {metric!r} is not numeric (got {node!r})")
    return float(node)


def _build_source(scenario: Scenario) -> "tuple[TraceSource, Optional[list]]":
    """The scenario's traffic source plus its distinct bases (for static)."""
    params = scenario.params
    order = params["order"]
    if params.get("trace"):
        source: TraceSource = PcapTraceSource(params["trace"])
        bases = (
            stream_distinct_bases(params["trace"], order=order)
            if params["scenario"] == "static"
            else None
        )
        return source, bases
    if params["workload"] == "synthetic":
        workload = SyntheticSensorWorkload(
            num_chunks=params["chunks"],
            distinct_bases=params["bases"],
            order=order,
            seed=params["seed"],
        )
        bases = workload.bases() if params["scenario"] == "static" else None
        return WorkloadTraceSource(workload), bases
    if params["workload"] == "thrash":
        # Same phase geometry as the topology engine's thrash flows, so a
        # linear sweep and a fan-in sweep stress the dictionary identically.
        workload = DictionaryThrashWorkload(
            num_chunks=params["chunks"],
            distinct_bases=params["bases"],
            order=order,
            phase_chunks=max(1, params["chunks"] // 4),
            phase_shift=max(1, params["bases"] // 4),
            seed=params["seed"],
        )
        bases = workload.bases() if params["scenario"] == "static" else None
        return WorkloadTraceSource(workload), bases
    workload = DnsQueryWorkload(
        num_queries=params["chunks"],
        distinct_names=params["names"],
        seed=params["seed"],
    )
    bases = (
        workload.bases(order=order) if params["scenario"] == "static" else None
    )
    return WorkloadTraceSource(workload), bases


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario: its identity plus the serialised report."""

    index: int
    scenario_id: str
    axes: Dict[str, Any]
    seed: int
    report: Dict[str, Any] = field(default_factory=dict)

    def metric(self, metric: str) -> Optional[float]:
        """Shorthand for :func:`scenario_metric` on this result's report."""
        return scenario_metric(self.report, metric)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (stable key order comes from the serialiser)."""
        return {
            "index": self.index,
            "scenario_id": self.scenario_id,
            "axes": dict(self.axes),
            "seed": self.seed,
            "report": self.report,
        }


def _run_fan_in_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute a fan-in topology scenario through the topology engine.

    ``senders`` concurrent flows share one ZipLine encoder; each flow gets
    its own workload stream seeded from the spec/flow identity (the same
    CRC-32 scheme as scenario seeds), so the result is independent of flow
    scheduling order and of how the sweep is sharded.
    """
    from repro.topology import fan_in_topology, run_topology

    params = scenario.params
    spec = fan_in_topology(
        name=scenario.scenario_id,
        senders=params["senders"],
        scenario=params["scenario"],
        hops=params["hops"],
        workload=params["workload"],
        chunks=params["chunks"],
        bases=params["bases"],
        names=params["names"],
        trace=params.get("trace"),
        pacing=params["pacing"],
        packet_rate=params["packet_rate"],
        speedup=params["speedup"],
        bandwidth_gbps=params["bandwidth_gbps"],
        propagation_us=params["propagation_us"],
        queue_capacity=params["queue_capacity"],
        loss=params["loss"],
        reorder=params["reorder"],
        seed=scenario.seed,
        order=params["order"],
        identifier_bits=params["identifier_bits"],
        control=params["control"],
        control_rate=params["control_rate"] or None,
    )
    if params["control_loss"]:
        from repro.topology.faults import FaultPlan, validate_spec_faults

        spec.faults = FaultPlan(control_loss=params["control_loss"])
        validate_spec_faults(spec)
    # Route through the sharded path at workers=1: scenario workers are
    # already processes, so the win here is the shared partition/merge
    # code — whose single-shard report is byte-identical to the engine's.
    report = run_topology(spec, workers=1)
    return ScenarioResult(
        index=scenario.index,
        scenario_id=scenario.scenario_id,
        axes=dict(scenario.axes),
        seed=scenario.seed,
        report=report.as_dict(),
    )


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario end to end (this is the worker function).

    Everything is rebuilt from the scenario's parameters and derived seed,
    so the result is a pure function of the scenario — the invariant that
    makes sharded and sequential sweeps byte-identical.  Linear topologies
    run through :class:`~repro.replay.harness.ReplayHarness`; the
    ``fan-in`` topology runs through the sharded
    :func:`~repro.topology.sharding.run_topology` path.
    """
    params = scenario.params
    if params["topology"] == "fan-in":
        return _run_fan_in_scenario(scenario)
    source, bases = _build_source(scenario)
    impairments = None
    if params["loss"] or params["reorder"]:
        impairments = ImpairmentModel(
            loss_probability=params["loss"],
            reorder_probability=params["reorder"],
            seed=scenario.seed,
        )
    harness = ReplayHarness(
        topology=params["topology"],
        scenario=params["scenario"],
        transform=GDTransform(order=params["order"]),
        identifier_bits=params["identifier_bits"],
        static_bases=bases,
        hops=params["hops"],
        bandwidth_bps=params["bandwidth_gbps"] * 1e9,
        propagation_delay=params["propagation_us"] * 1e-6,
        queue_capacity=params["queue_capacity"] or None,
        impairments=impairments,
        seed=scenario.seed,
    )
    pacing = pacing_from_name(
        params["pacing"],
        packet_rate=params["packet_rate"],
        speedup=params["speedup"],
    )
    report = harness.run(source, pacing)
    return ScenarioResult(
        index=scenario.index,
        scenario_id=scenario.scenario_id,
        axes=dict(scenario.axes),
        seed=scenario.seed,
        report=report.as_dict(),
    )


class MatrixResult:
    """The aggregate outcome of one matrix sweep."""

    def __init__(self, spec: ExperimentSpec, results: Sequence[ScenarioResult]):
        self.spec = spec
        self.results = sorted(results, key=lambda result: result.index)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def axis_names(self) -> List[str]:
        """The swept axes, sorted — the leading columns of every table."""
        return self.spec.axis_names

    @property
    def intact(self) -> bool:
        """True when no scenario delivered a corrupted chunk.

        Scenarios without chunk-level integrity (e.g. decoder-only over a
        processed trace) fall back to the decoder's unknown-identifier
        counter — a decode that dropped packets it could not resolve must
        not report success, the same contract ``repro replay`` applies.
        """
        for result in self.results:
            corrupted = result.metric("integrity.corrupted")
            if corrupted is not None:
                if corrupted:
                    return False
                continue
            unknown = (
                result.metric("metrics.counters.decoder.unknown_identifier") or 0
            )
            if unknown:
                return False
        return True

    # -- aggregation -----------------------------------------------------------

    def group_by(self, axis: str, metric: str = "compression_ratio") -> List[ExperimentResult]:
        """Summarise ``metric`` per value of ``axis`` (mean ± 95 % CI).

        Scenarios whose report lacks the metric (e.g. no latency samples)
        are skipped, exactly like a plotting script would drop them.
        """
        if axis not in self.spec.axes:
            raise ReproError(
                f"unknown group-by axis {axis!r}; axes: {', '.join(self.axis_names) or 'none'}"
            )
        labeled = (
            (f"{axis}={result.axes[axis]}", result.metric(metric))
            for result in self.results
        )
        return summarize_groups(
            (label, value) for label, value in labeled if value is not None
        )

    # -- rendering -------------------------------------------------------------

    def summary_rows(self) -> List[List[object]]:
        """One row per scenario: axis values plus the headline metrics."""
        rows: List[List[object]] = []
        for result in self.results:
            row: List[object] = [result.axes[axis] for axis in self.axis_names]
            for _, metric in SUMMARY_METRICS:
                value = result.metric(metric)
                if value is None:
                    row.append("n/a")
                elif metric in _SCALE_US:
                    row.append(f"{value * 1e6:.2f}")
                elif metric in _SCALE_MS:
                    row.append(f"{value * 1e3:.3f}")
                elif metric in ("integrity.missing", "integrity.corrupted"):
                    row.append(f"{int(value)}")
                else:
                    row.append(f"{value:.4f}")
            rows.append(row)
        return rows

    def render(
        self,
        group_axes: Optional[Sequence[str]] = None,
        metric: str = "compression_ratio",
    ) -> str:
        """The aggregate table, plus one group-by table per requested axis."""
        headers = list(self.axis_names) + [label for label, _ in SUMMARY_METRICS]
        parts = [
            format_table(
                headers,
                self.summary_rows(),
                title=f"experiment {self.spec.name} ({len(self.results)} scenarios)",
            )
        ]
        for axis in group_axes or ():
            groups = self.group_by(axis, metric)
            rows = [
                [
                    result.name,
                    result.summary.count,
                    f"{result.summary.mean:.4f}",
                    f"{result.summary.ci95:.4f}",
                    f"{result.summary.minimum:.4f}",
                    f"{result.summary.maximum:.4f}",
                ]
                for result in groups
            ]
            parts.append(
                format_table(
                    ["group", "n", "mean", "ci95", "min", "max"],
                    rows,
                    title=f"{metric} by {axis}",
                )
            )
        return "\n\n".join(parts)

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Everything the sweep produced, as JSON-friendly plain data."""
        return {
            "spec": self.spec.as_dict(),
            "scenarios": [result.as_dict() for result in self.results],
        }

    def json_text(self) -> str:
        """Canonical JSON serialisation (sorted keys, fixed indentation).

        This is the byte-identity witness: a sharded sweep must produce
        exactly this text.
        """
        return json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the full result set as JSON."""
        return save_results_json(path, self.as_dict())

    def csv_text(self) -> str:
        """The summary table as CSV (axes first, then the headline metrics).

        Written through :mod:`csv` so axis values containing commas (e.g.
        trace paths) are quoted instead of corrupting the row.
        """
        headers = list(self.axis_names) + [label for label, _ in SUMMARY_METRICS]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        writer.writerows(self.summary_rows())
        return buffer.getvalue()

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the summary table as a CSV file."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.csv_text(), encoding="utf-8")
        return target


class MatrixRunner:
    """Expand a spec and execute its scenarios, optionally sharded.

    Parameters
    ----------
    spec:
        The :class:`~repro.experiments.spec.ExperimentSpec` to sweep.
    workers:
        Worker processes.  1 (the default) runs sequentially in-process;
        N > 1 fans scenarios out over a process pool, one scenario per
        task, and reassembles results in scenario order.  Both paths
        produce byte-identical :meth:`MatrixResult.json_text` output.
    """

    def __init__(self, spec: ExperimentSpec, workers: int = 1):
        if workers <= 0:
            raise ReproError(f"workers must be positive, got {workers}")
        self.spec = spec
        self.workers = workers

    def run(
        self, progress: Optional[Callable[[ScenarioResult], None]] = None
    ) -> MatrixResult:
        """Execute the whole matrix and return the aggregate result.

        ``progress`` is invoked once per finished scenario (in completion
        order when sharded), for CLI feedback; it must not mutate results.
        """
        scenarios = self.spec.expand()
        if not scenarios:
            raise ReproError(f"spec {self.spec.name!r} expands to no scenarios")
        workers = min(self.workers, len(scenarios))
        if workers <= 1:
            results = []
            for scenario in scenarios:
                result = run_scenario(scenario)
                if progress is not None:
                    progress(result)
                results.append(result)
            return MatrixResult(self.spec, results)
        # fork shares the already-imported interpreter state and is the fast
        # path, but it is only reliable on Linux (macOS frameworks can
        # deadlock in forked children, which is why CPython's default there
        # is spawn).  Everywhere else the platform default is used; that
        # works because run_scenario is module-level and scenarios are
        # plain picklable data.
        method = "fork" if sys.platform == "linux" else None
        context = multiprocessing.get_context(method)
        with context.Pool(processes=workers) as pool:
            results = []
            for result in pool.imap_unordered(run_scenario, scenarios, chunksize=1):
                if progress is not None:
                    progress(result)
                results.append(result)
        return MatrixResult(self.spec, results)
