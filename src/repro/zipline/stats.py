"""Result containers and byte accounting for ZipLine deployments.

The Figure 3 experiment measures the total payload bytes that cross the
compressed hop (between the encoding and the decoding switch), classified by
packet type; this module provides the accounting objects the deployment
fills in and the reporting helpers the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import PacketError
from repro.net.ethernet import ETHERNET_HEADER_BYTES, EtherType
from repro.net.packets import PacketKind

__all__ = ["LinkTapRecord", "LinkTap", "CompressionSummary"]

#: EtherType wire bytes, bound once for the per-frame classification below.
_TYPE2_ETHERTYPE = int(EtherType.ZIPLINE_UNCOMPRESSED).to_bytes(2, "big")
_TYPE3_ETHERTYPE = int(EtherType.ZIPLINE_COMPRESSED).to_bytes(2, "big")


@dataclass(frozen=True)
class LinkTapRecord:
    """One frame observed on the tapped link."""

    time: float
    kind: PacketKind
    frame_bytes: int
    payload_bytes: int


class LinkTap:
    """Observe every frame crossing a link and keep per-type byte counts.

    The tap sits between the encoding and decoding switches — the network
    hop whose traffic volume ZipLine reduces — and records what the paper's
    counters record: how many packets of each type crossed, and how many
    payload bytes they carried.

    Aggregates (counts, byte totals, first-arrival times) are maintained
    incrementally, so they stay O(1) in memory.  The per-frame ``records``
    list is kept only when ``store_records`` is true (the default); the
    replay subsystem's counters-only mode disables it so taps on huge
    traces stay bounded.
    """

    def __init__(self, store_records: bool = True) -> None:
        self.store_records = store_records
        self.records: List[LinkTapRecord] = []
        self._counts: Dict[PacketKind, int] = {kind: 0 for kind in PacketKind}
        self._payload_bytes: Dict[PacketKind, int] = {kind: 0 for kind in PacketKind}
        self._first_times: Dict[PacketKind, float] = {}
        self._total_frames = 0
        self._total_payload_bytes = 0

    def observe(self, frame_bytes_raw: bytes, time: float) -> None:
        """Record one frame (raw bytes as transmitted).

        Classification reads the EtherType straight out of the wire bytes —
        no :class:`~repro.net.ethernet.EthernetFrame` (and its MAC address
        objects) is materialised per frame; the tap sits on every replayed
        packet's path.
        """
        if len(frame_bytes_raw) < ETHERNET_HEADER_BYTES:
            raise PacketError(
                f"frame of {len(frame_bytes_raw)} bytes is shorter than an "
                f"Ethernet header ({ETHERNET_HEADER_BYTES} bytes)"
            )
        ethertype = frame_bytes_raw[12:14]
        if ethertype == _TYPE2_ETHERTYPE:
            kind = PacketKind.PROCESSED_UNCOMPRESSED
        elif ethertype == _TYPE3_ETHERTYPE:
            kind = PacketKind.PROCESSED_COMPRESSED
        else:
            kind = PacketKind.RAW
        payload_bytes = len(frame_bytes_raw) - ETHERNET_HEADER_BYTES
        self._counts[kind] += 1
        self._payload_bytes[kind] += payload_bytes
        self._total_frames += 1
        self._total_payload_bytes += payload_bytes
        if kind not in self._first_times:
            self._first_times[kind] = time
        if self.store_records:
            self.records.append(
                LinkTapRecord(
                    time=time,
                    kind=kind,
                    frame_bytes=len(frame_bytes_raw),
                    payload_bytes=payload_bytes,
                )
            )

    # -- aggregation ---------------------------------------------------------

    def count_by_kind(self) -> Dict[PacketKind, int]:
        """Number of frames per packet type."""
        return dict(self._counts)

    def payload_bytes_by_kind(self) -> Dict[PacketKind, int]:
        """Payload bytes per packet type."""
        return dict(self._payload_bytes)

    def total_payload_bytes(self) -> int:
        """Payload bytes across every frame."""
        return self._total_payload_bytes

    def total_frames(self) -> int:
        """Number of frames observed."""
        return self._total_frames

    def first_time_of_kind(self, kind: PacketKind) -> Optional[float]:
        """Timestamp of the first frame of the given type, or ``None``.

        The dynamic-learning experiment measures the gap between the first
        type-2 and the first type-3 frame arriving at the receiver.
        """
        return self._first_times.get(kind)

    def clear(self) -> None:
        """Drop every recorded frame and reset the aggregates."""
        self.records.clear()
        self._counts = {kind: 0 for kind in PacketKind}
        self._payload_bytes = {kind: 0 for kind in PacketKind}
        self._first_times = {}
        self._total_frames = 0
        self._total_payload_bytes = 0


@dataclass
class CompressionSummary:
    """Figure 3 style summary of one trace replay."""

    original_payload_bytes: int
    transmitted_payload_bytes: int
    raw_packets: int = 0
    uncompressed_packets: int = 0
    compressed_packets: int = 0
    learning_time: Optional[float] = None
    dataset: str = ""
    scenario: str = ""

    @property
    def total_packets(self) -> int:
        """Total packets that crossed the compressed hop."""
        return self.raw_packets + self.uncompressed_packets + self.compressed_packets

    @property
    def compression_ratio(self) -> float:
        """Transmitted payload bytes over original payload bytes."""
        if self.original_payload_bytes == 0:
            return 0.0
        return self.transmitted_payload_bytes / self.original_payload_bytes

    @property
    def savings_percent(self) -> float:
        """Percentage of payload bytes saved by the compression."""
        return 100.0 * (1.0 - self.compression_ratio)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "dataset": self.dataset,
            "scenario": self.scenario,
            "original_payload_bytes": self.original_payload_bytes,
            "transmitted_payload_bytes": self.transmitted_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "raw_packets": self.raw_packets,
            "uncompressed_packets": self.uncompressed_packets,
            "compressed_packets": self.compressed_packets,
            "learning_time": self.learning_time,
        }

    @classmethod
    def from_link_tap(
        cls,
        tap: LinkTap,
        original_payload_bytes: int,
        dataset: str = "",
        scenario: str = "",
    ) -> "CompressionSummary":
        """Build a summary from a link tap's observations."""
        counts = tap.count_by_kind()
        return cls(
            original_payload_bytes=original_payload_bytes,
            transmitted_payload_bytes=tap.total_payload_bytes(),
            raw_packets=counts[PacketKind.RAW],
            uncompressed_packets=counts[PacketKind.PROCESSED_UNCOMPRESSED],
            compressed_packets=counts[PacketKind.PROCESSED_COMPRESSED],
            dataset=dataset,
            scenario=scenario,
        )
