"""Result containers and byte accounting for ZipLine deployments.

The Figure 3 experiment measures the total payload bytes that cross the
compressed hop (between the encoding and the decoding switch), classified by
packet type; this module provides the accounting objects the deployment
fills in and the reporting helpers the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.ethernet import EthernetFrame, EtherType
from repro.net.packets import PacketKind, classify_frame

__all__ = ["LinkTapRecord", "LinkTap", "CompressionSummary"]


@dataclass(frozen=True)
class LinkTapRecord:
    """One frame observed on the tapped link."""

    time: float
    kind: PacketKind
    frame_bytes: int
    payload_bytes: int


class LinkTap:
    """Observe every frame crossing a link and keep per-type byte counts.

    The tap sits between the encoding and decoding switches — the network
    hop whose traffic volume ZipLine reduces — and records what the paper's
    counters record: how many packets of each type crossed, and how many
    payload bytes they carried.
    """

    def __init__(self) -> None:
        self.records: List[LinkTapRecord] = []

    def observe(self, frame_bytes_raw: bytes, time: float) -> None:
        """Record one frame (raw bytes as transmitted)."""
        frame = EthernetFrame.from_bytes(frame_bytes_raw)
        kind = classify_frame(frame)
        self.records.append(
            LinkTapRecord(
                time=time,
                kind=kind,
                frame_bytes=len(frame_bytes_raw),
                payload_bytes=frame.payload_bytes,
            )
        )

    # -- aggregation ---------------------------------------------------------

    def count_by_kind(self) -> Dict[PacketKind, int]:
        """Number of frames per packet type."""
        counts: Dict[PacketKind, int] = {kind: 0 for kind in PacketKind}
        for record in self.records:
            counts[record.kind] += 1
        return counts

    def payload_bytes_by_kind(self) -> Dict[PacketKind, int]:
        """Payload bytes per packet type."""
        totals: Dict[PacketKind, int] = {kind: 0 for kind in PacketKind}
        for record in self.records:
            totals[record.kind] += record.payload_bytes
        return totals

    def total_payload_bytes(self) -> int:
        """Payload bytes across every frame."""
        return sum(record.payload_bytes for record in self.records)

    def total_frames(self) -> int:
        """Number of frames observed."""
        return len(self.records)

    def first_time_of_kind(self, kind: PacketKind) -> Optional[float]:
        """Timestamp of the first frame of the given type, or ``None``.

        The dynamic-learning experiment measures the gap between the first
        type-2 and the first type-3 frame arriving at the receiver.
        """
        for record in self.records:
            if record.kind is kind:
                return record.time
        return None

    def clear(self) -> None:
        """Drop every recorded frame."""
        self.records.clear()


@dataclass
class CompressionSummary:
    """Figure 3 style summary of one trace replay."""

    original_payload_bytes: int
    transmitted_payload_bytes: int
    raw_packets: int = 0
    uncompressed_packets: int = 0
    compressed_packets: int = 0
    learning_time: Optional[float] = None
    dataset: str = ""
    scenario: str = ""

    @property
    def total_packets(self) -> int:
        """Total packets that crossed the compressed hop."""
        return self.raw_packets + self.uncompressed_packets + self.compressed_packets

    @property
    def compression_ratio(self) -> float:
        """Transmitted payload bytes over original payload bytes."""
        if self.original_payload_bytes == 0:
            return 0.0
        return self.transmitted_payload_bytes / self.original_payload_bytes

    @property
    def savings_percent(self) -> float:
        """Percentage of payload bytes saved by the compression."""
        return 100.0 * (1.0 - self.compression_ratio)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "dataset": self.dataset,
            "scenario": self.scenario,
            "original_payload_bytes": self.original_payload_bytes,
            "transmitted_payload_bytes": self.transmitted_payload_bytes,
            "compression_ratio": self.compression_ratio,
            "savings_percent": self.savings_percent,
            "raw_packets": self.raw_packets,
            "uncompressed_packets": self.uncompressed_packets,
            "compressed_packets": self.compressed_packets,
            "learning_time": self.learning_time,
        }

    @classmethod
    def from_link_tap(
        cls,
        tap: LinkTap,
        original_payload_bytes: int,
        dataset: str = "",
        scenario: str = "",
    ) -> "CompressionSummary":
        """Build a summary from a link tap's observations."""
        counts = tap.count_by_kind()
        return cls(
            original_payload_bytes=original_payload_bytes,
            transmitted_payload_bytes=tap.total_payload_bytes(),
            raw_packets=counts[PacketKind.RAW],
            uncompressed_packets=counts[PacketKind.PROCESSED_UNCOMPRESSED],
            compressed_packets=counts[PacketKind.PROCESSED_COMPRESSED],
            dataset=dataset,
            scenario=scenario,
        )
