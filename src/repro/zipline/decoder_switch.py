"""The ZipLine *decoding* switch: the P4-equivalent decompression program.

Implements the Figure 2 workflow on the Tofino model:

1. the parser extracts the Ethernet header and then, depending on the
   EtherType, the type-3 (compressed) or type-2 (uncompressed) ZipLine
   header (➊);
2. for a compressed packet, the identifier → basis table (kept in sync by
   the control plane) recovers the basis (➋);
3. the basis is zero-padded and pushed through the same CRC extern as the
   encoder to recover the parity bits (➌, ➍);
4. the syndrome → XOR-mask table gives the deviation mask (➎), which is
   applied to the reassembled codeword (➏) to restore the original chunk
   (➐);
5. the packet leaves the switch as a raw chunk packet again.

Frames that are neither type 2 nor type 3 are forwarded untouched.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro import obs as _obs
from repro.core.bits import mask
from repro.core.transform import GDTransform
from repro.exceptions import PipelineError
from repro.net.ethernet import EtherType
from repro.sim.simulator import Simulator
from repro.tofino.constraints import ResourceUsage
from repro.tofino.counters import NamedCounterSet
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial
from repro.tofino.digest import DigestEngine
from repro.tofino.parser import ACCEPT, Deparser, Header, Parser, ParserState
from repro.tofino.pipeline import PacketContext, Pipeline, PipelineResult
from repro.tofino.switch import TofinoSwitch
from repro.tofino.tables import ActionSpec, MatchActionTable
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK, ZipLineHeaderSet

__all__ = ["ZipLineDecoderSwitch"]

#: Counter labels, mirroring the packet classifications of Section 5.
COUNTER_LABELS = [
    "compressed_to_raw",
    "uncompressed_to_raw",
    "unknown_identifier",
    "passthrough_other",
]


class ZipLineDecoderSwitch:
    """A Tofino switch running the ZipLine decoding program.

    The constructor parameters mirror :class:`ZipLineEncoderSwitch`; the
    decode direction needs the same transform and identifier width so the
    header formats agree.
    """

    def __init__(
        self,
        name: str = "zipline-decoder",
        transform: Optional[GDTransform] = None,
        identifier_bits: int = 15,
        simulator: Optional[Simulator] = None,
        forwarding: Optional[Dict[int, int]] = None,
        default_egress_port: int = 1,
        digest_engine: Optional[DigestEngine] = None,
        fast: Optional[bool] = None,
        port_count: Optional[int] = None,
    ):
        self._transform = transform or GDTransform(order=8)
        self._identifier_bits = identifier_bits
        self._headers = ZipLineHeaderSet.build(self._transform, identifier_bits)
        self._forwarding = dict(forwarding or {})
        self._default_egress_port = default_egress_port
        self._simulator = simulator

        code = self._transform.code
        self._syndrome_bits = code.m
        self._crc = CrcExtern(CrcPolynomial(coeff=code.crc_parameter, width=code.m))

        self._syndrome_table = self._build_syndrome_table()
        self._identifier_table = self._build_identifier_table()
        self.counters = NamedCounterSet(COUNTER_LABELS, name=f"{name}-counters")

        pipeline = Pipeline(
            name=f"{name}-pipeline",
            parser=self._build_parser(),
            ingress=self._ingress,
            deparser=Deparser(["ethernet", "chunk", "type3", "type2"]),
        )
        self._register_resources(pipeline)
        switch_kwargs = {} if port_count is None else {"port_count": port_count}
        self.switch = TofinoSwitch(
            name=name,
            pipeline=pipeline,
            simulator=simulator,
            digest_engine=digest_engine or DigestEngine(simulator),
            **switch_kwargs,
        )
        self._build_fast_path(fast)

    def _build_fast_path(self, fast: Optional[bool]) -> None:
        """Precompute the compiled decode fast path (see the encoder twin)."""
        transform = self._transform
        code = transform.code
        if fast is None:
            fast = transform.fast
        headers = self._headers
        syndrome_entries = [
            self._syndrome_table.get_entry(syndrome)
            for syndrome in range(1 << code.m)
        ]
        self._fast_enabled = bool(
            fast
            and transform.prefix_bits <= 8
            and all(entry is not None for entry in syndrome_entries)
        )
        if not self._fast_enabled:
            return
        self._fast_syndrome_entries = syndrome_entries
        self._fast_flip_masks = tuple(
            entry.params.get("flip_mask", 0) for entry in syndrome_entries
        )
        self._fast_eth_raw = ETHERTYPE_RAW_CHUNK.to_bytes(2, "big")
        self._fast_eth_type2 = int(EtherType.ZIPLINE_UNCOMPRESSED).to_bytes(2, "big")
        self._fast_eth_type3 = int(EtherType.ZIPLINE_COMPRESSED).to_bytes(2, "big")
        self._fast_chunk_bytes = headers.chunk.total_bytes
        self._fast_type2_bytes = headers.type2.total_bytes
        self._fast_type3_bytes = headers.type3.total_bytes
        self._fast_type2_pad = headers.type2_padding_bits
        self._fast_type3_pad = headers.type3_padding_bits
        self._fast_syndrome_mask = mask(code.m)
        self._fast_basis_mask = mask(code.k)
        self._fast_identifier_mask = mask(self._identifier_bits)

    # -- program construction ---------------------------------------------------

    def _build_parser(self) -> Parser:
        headers = self._headers
        states = [
            ParserState(
                name="start",
                extract=("ethernet", headers.ethernet),
                select_field=("ethernet", "ether_type"),
                transitions={
                    EtherType.ZIPLINE_UNCOMPRESSED: "parse_type2",
                    EtherType.ZIPLINE_COMPRESSED: "parse_type3",
                    ETHERTYPE_RAW_CHUNK: "parse_chunk",
                },
                default=ACCEPT,
            ),
            ParserState(name="parse_type2", extract=("type2", headers.type2)),
            ParserState(name="parse_type3", extract=("type3", headers.type3)),
            ParserState(name="parse_chunk", extract=("chunk", headers.chunk)),
        ]
        return Parser(states, start="start")

    def _build_syndrome_table(self) -> MatchActionTable:
        """Const-entry syndrome → XOR-mask table (shared shape with the encoder)."""
        code = self._transform.code
        table = MatchActionTable(
            name="syndrome_mask",
            key_bits=code.m,
            size=1 << code.m,
            actions=[ActionSpec("set_mask", ("flip_mask",)), ActionSpec("NoAction")],
            default_action="NoAction",
        )
        rows = (
            (syndrome, "set_mask", {"flip_mask": code.error_mask(syndrome)})
            for syndrome in range(1 << code.m)
            if syndrome == 0 or code.error_position(syndrome) is not None
        )
        table.add_const_entries(rows)
        return table

    def _build_identifier_table(self) -> MatchActionTable:
        """The identifier → basis exact-match table written by the control plane."""
        return MatchActionTable(
            name="id_to_basis",
            key_bits=self._identifier_bits,
            size=1 << self._identifier_bits,
            actions=[ActionSpec("set_basis", ("basis",)), ActionSpec("miss")],
            default_action="miss",
        )

    def _register_resources(self, pipeline: Pipeline) -> None:
        tracker = pipeline.resources
        tracker.register(
            ResourceUsage(
                name="syndrome_mask",
                stage=1,
                sram_blocks=tracker.sram_blocks_for_table(
                    entries=1 << self._syndrome_bits,
                    key_bits=self._syndrome_bits,
                    action_bits=min(self._transform.code.n, 256),
                ),
                entries=1 << self._syndrome_bits,
            )
        )
        tracker.register(
            ResourceUsage(
                name="id_to_basis",
                stage=3,
                sram_blocks=min(
                    tracker.profile.sram_blocks_per_stage,
                    tracker.sram_blocks_for_table(
                        entries=1 << self._identifier_bits,
                        key_bits=self._identifier_bits,
                        action_bits=self._transform.basis_bits,
                    ),
                ),
                entries=1 << self._identifier_bits,
            )
        )

    # -- the ingress control block ------------------------------------------------------

    def _ingress(self, context: PacketContext) -> None:
        packet = context.packet
        now = self._simulator.now if self._simulator is not None else 0.0
        ethernet = packet.header("ethernet")
        frame_bytes = 14 + sum(
            header.header_type.total_bytes
            for header in packet.headers.values()
            if header.valid and header.header_type.name != "ethernet_h"
        ) + len(packet.payload)

        if packet.has_valid("type3"):
            self._decode_compressed(context, ethernet, now, frame_bytes)
        elif packet.has_valid("type2"):
            self._decode_uncompressed(context, ethernet, frame_bytes)
        else:
            self.counters.count("passthrough_other", frame_bytes)

        if not context.drop_flag:
            context.send_to_port(
                self._forwarding.get(context.ingress_port, self._default_egress_port)
            )

    def _decode_compressed(
        self, context: PacketContext, ethernet: Header, now: float, frame_bytes: int
    ) -> None:
        packet = context.packet
        type3 = packet.header("type3")
        identifier = type3["identifier"]
        syndrome = type3["syndrome"]
        prefix = type3["prefix"] if self._transform.prefix_bits else 0

        lookup = self._identifier_table.lookup(identifier, now=now)
        tracer = _obs.TRACER
        if not lookup.hit or lookup.action != "set_basis":
            # A compressed packet whose mapping is unknown cannot be restored;
            # the control plane's install ordering should make this impossible.
            self.counters.count("unknown_identifier", frame_bytes)
            if tracer.enabled:
                tracer.instant(
                    "decode.drop",
                    self.switch.name,
                    args={"outcome": "unknown", "identifier": identifier},
                    ts=now,
                )
            context.drop()
            return
        basis = lookup.params["basis"]
        type3.valid = False
        self._emit_chunk(packet, ethernet, prefix, basis, syndrome)
        self.counters.count("compressed_to_raw", frame_bytes)
        if tracer.enabled:
            tracer.span(
                "decode",
                self.switch.name,
                now,
                now + self.switch.pipeline.pipeline_latency,
                args={"outcome": "hit", "identifier": identifier},
            )

    def _decode_uncompressed(
        self, context: PacketContext, ethernet: Header, frame_bytes: int
    ) -> None:
        packet = context.packet
        type2 = packet.header("type2")
        basis = type2["basis"]
        syndrome = type2["syndrome"]
        prefix = type2["prefix"] if self._transform.prefix_bits else 0
        type2.valid = False
        self._emit_chunk(packet, ethernet, prefix, basis, syndrome)
        self.counters.count("uncompressed_to_raw", frame_bytes)
        tracer = _obs.TRACER
        if tracer.enabled:
            now = self._simulator.now if self._simulator is not None else 0.0
            tracer.span(
                "decode",
                self.switch.name,
                now,
                now + self.switch.pipeline.pipeline_latency,
                args={"outcome": "uncompressed"},
            )

    def _emit_chunk(
        self,
        packet,
        ethernet: Header,
        prefix: int,
        basis: int,
        syndrome: int,
    ) -> None:
        """Rebuild the original chunk from basis + syndrome (Figure 2 ➌–➐)."""
        code = self._transform.code
        # Step ➌/➍: zero-pad the basis and recompute the parity bits with the
        # same CRC extern the encoder used.
        parity = self._crc.get([(basis, code.k), (0, code.m)])
        codeword = (basis << code.m) | parity
        # Steps ➎/➏: the syndrome mask flips the deviated bit back.
        result = self._syndrome_table.lookup(syndrome)
        flip_mask = result.params.get("flip_mask", 0)
        body = codeword ^ flip_mask

        chunk = Header(self._headers.chunk)
        if self._transform.prefix_bits:
            chunk["prefix"] = prefix
        chunk["body"] = body
        chunk.valid = True
        packet.headers["chunk"] = chunk
        ethernet["ether_type"] = ETHERTYPE_RAW_CHUNK

    # -- control-plane interface --------------------------------------------------------

    def install_identifier_mapping(self, identifier: int, basis: Hashable) -> None:
        """Install (or replace) an identifier → basis entry."""
        existing = self._identifier_table.get_entry(identifier)
        if existing is not None:
            self._identifier_table.modify_entry(identifier, "set_basis", {"basis": basis})
            return
        self._identifier_table.add_entry(identifier, "set_basis", {"basis": basis})

    def remove_identifier_mapping(self, identifier: int) -> None:
        """Remove an identifier → basis entry (no-op when absent)."""
        if self._identifier_table.get_entry(identifier) is not None:
            self._identifier_table.delete_entry(identifier)

    # -- convenience ----------------------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transform the program was built with."""
        return self._transform

    @property
    def headers(self) -> ZipLineHeaderSet:
        """The header set (payload sizes) of the program."""
        return self._headers

    @property
    def identifier_table(self) -> MatchActionTable:
        """The identifier → basis table (for tests and telemetry)."""
        return self._identifier_table

    @property
    def pipeline(self) -> Pipeline:
        """The underlying pipeline."""
        return self.switch.pipeline

    @property
    def simulator(self) -> Optional[Simulator]:
        """The shared simulator this switch schedules against (if any)."""
        return self._simulator

    def set_forwarding(self, ingress_port: int, egress_port: int) -> None:
        """Add or change a static forwarding entry."""
        if ingress_port < 0 or egress_port < 0:
            raise PipelineError("ports must be non-negative")
        self._forwarding[ingress_port] = egress_port

    def receive(self, frame: bytes, ingress_port: int):
        """Process one frame.

        Well-formed type-2/type-3 frames go through the compiled fast path
        (fused integer decode, identical counters/table metadata); anything
        else falls back to the interpreted pipeline.
        """
        if self._fast_enabled:
            result = self._fast_receive(frame, ingress_port)
            if result is not None:
                return result
        return self.switch.receive(frame, ingress_port)

    def receive_batch(self, frames: List[bytes], ingress_port: int) -> List[object]:
        """Process co-resident frames, batching the parity recovery.

        A pure pre-pass peeks the basis each decodable frame will rebuild
        its chunk from; all those parities are then recovered in **one**
        :meth:`CrcExtern.get_batch` call and the frames are finished
        strictly in arrival order.  Counters, table metadata, drops and
        emitted frames are identical to per-frame :meth:`receive` calls;
        frames that would take the interpreted path still do.
        """
        switch = self.switch
        if (
            not self._fast_enabled
            or not 0 <= ingress_port < switch.port_count
            or len(frames) < 2
        ):
            return [self.receive(frame, ingress_port) for frame in frames]
        code = self._transform.code
        m = code.m
        parity_bytes = (code.n + 7) // 8
        bases: Dict[int, int] = {}
        for index, frame in enumerate(frames):
            basis = self._peek_basis(frame)
            if basis is not None:
                bases[index] = basis
        parities: Dict[int, int] = {}
        if len(bases) >= 2:
            buffer = b"".join(
                (basis << m).to_bytes(parity_bytes, "big")
                for basis in bases.values()
            )
            parities = dict(
                zip(bases.keys(), self._crc.get_batch(buffer, 8 * parity_bytes))
            )
        results = []
        append = results.append
        for index, frame in enumerate(frames):
            parity = parities.get(index)
            if parity is not None:
                append(self._fast_receive(frame, ingress_port, parity=parity))
            else:
                append(self.receive(frame, ingress_port))
        return results

    def _peek_basis(self, frame: bytes) -> Optional[int]:
        """Pure pre-pass: the basis this frame's chunk would be rebuilt from.

        Returns ``None`` when the frame would not reach the fused chunk
        emit (wrong EtherType, short frame, unknown or oddly-typed
        identifier mapping) — those frames keep their per-frame path.
        Reads table state without touching counters or hit metadata.
        """
        if len(frame) < 14:
            return None
        ethertype = frame[12:14]
        code = self._transform.code
        m = code.m
        if ethertype == self._fast_eth_type3:
            header_end = 14 + self._fast_type3_bytes
            if len(frame) < header_end:
                return None
            value = int.from_bytes(frame[14:header_end], "big") >> self._fast_type3_pad
            identifier = (value >> m) & self._fast_identifier_mask
            entry = self._identifier_table.get_entry(identifier)
            if entry is None or entry.action != "set_basis":
                return None
            basis = entry.params["basis"]
            if not isinstance(basis, int) or basis < 0 or basis >> code.k:
                return None
            return basis
        if ethertype == self._fast_eth_type2:
            header_end = 14 + self._fast_type2_bytes
            if len(frame) < header_end:
                return None
            value = int.from_bytes(frame[14:header_end], "big") >> self._fast_type2_pad
            return (value >> m) & self._fast_basis_mask
        return None

    def _fast_receive(
        self, frame: bytes, ingress_port: int, parity: Optional[int] = None
    ):
        """Compiled per-frame path; returns ``None`` to defer to the pipeline."""
        switch = self.switch
        if not 0 <= ingress_port < switch.port_count:
            return None
        length = len(frame)
        if length < 14:
            return None
        ethertype = frame[12:14]
        pipeline = switch.pipeline
        simulator = self._simulator
        now = simulator.now if simulator is not None else 0.0
        transform = self._transform
        code = transform.code
        m = code.m

        if ethertype == self._fast_eth_type3:
            header_end = 14 + self._fast_type3_bytes
            if length < header_end:
                return None
            value = int.from_bytes(frame[14:header_end], "big") >> self._fast_type3_pad
            syndrome = value & self._fast_syndrome_mask
            identifier = (value >> m) & self._fast_identifier_mask
            prefix = (
                value >> (m + self._identifier_bits) if transform.prefix_bits else 0
            )
            # Peek without counters first: if the installed basis is not a
            # plain in-range int, the frame must take the interpreted path,
            # and bailing out after a counting lookup would double-count
            # this frame's table metadata.
            table = self._identifier_table
            entry = table.get_entry(identifier)
            if entry is not None and entry.action == "set_basis":
                basis = entry.params["basis"]
                if not isinstance(basis, int) or basis < 0 or basis >> code.k:
                    return None  # oddly-typed install: interpreted path
            table.lookups += 1
            if entry is None or entry.action != "set_basis":
                if entry is not None:
                    table.hits += 1
                    entry.last_hit = now
                    entry.hit_count += 1
                self.counters.count("unknown_identifier", length)
                tracer = _obs.TRACER
                if tracer.enabled:
                    tracer.instant(
                        "decode.drop",
                        switch.name,
                        args={"outcome": "unknown", "identifier": identifier},
                        ts=now,
                    )
                switch.record_rx(ingress_port, length)
                pipeline.packets_processed += 1
                pipeline.parser.packets_parsed += 1
                pipeline.packets_dropped += 1
                return PipelineResult(
                    egress_port=None,
                    frame=None,
                    digests=(),
                    latency=pipeline.pipeline_latency,
                )
            table.hits += 1
            entry.last_hit = now
            entry.hit_count += 1
            out = self._fast_emit_chunk(
                frame, header_end, prefix, basis, syndrome, parity=parity
            )
            self.counters.count("compressed_to_raw", length)
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.span(
                    "decode",
                    switch.name,
                    now,
                    now + pipeline.pipeline_latency,
                    args={"outcome": "hit", "identifier": identifier},
                )
        elif ethertype == self._fast_eth_type2:
            header_end = 14 + self._fast_type2_bytes
            if length < header_end:
                return None
            value = int.from_bytes(frame[14:header_end], "big") >> self._fast_type2_pad
            syndrome = value & self._fast_syndrome_mask
            basis = (value >> m) & self._fast_basis_mask
            prefix = value >> (m + code.k) if transform.prefix_bits else 0
            out = self._fast_emit_chunk(
                frame, header_end, prefix, basis, syndrome, parity=parity
            )
            self.counters.count("uncompressed_to_raw", length)
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.span(
                    "decode",
                    switch.name,
                    now,
                    now + pipeline.pipeline_latency,
                    args={"outcome": "uncompressed"},
                )
        elif ethertype == self._fast_eth_raw:
            if length < 14 + self._fast_chunk_bytes:
                return None
            out = frame
            self.counters.count("passthrough_other", length)
        else:
            out = frame
            self.counters.count("passthrough_other", length)

        switch.record_rx(ingress_port, length)
        pipeline.packets_processed += 1
        pipeline.parser.packets_parsed += 1
        egress = self._forwarding.get(ingress_port, self._default_egress_port)
        latency = pipeline.pipeline_latency
        switch.transmit(egress, out, latency)
        return PipelineResult(
            egress_port=egress, frame=out, digests=(), latency=latency
        )

    def _fast_emit_chunk(
        self,
        frame: bytes,
        header_end: int,
        prefix: int,
        basis: int,
        syndrome: int,
        parity: Optional[int] = None,
    ) -> bytes:
        """Fused Figure 2 ➌–➐: rebuild the raw chunk frame bytes."""
        code = self._transform.code
        # Steps ➌/➍: parity through the same CRC unit (fused byte loop).  A
        # batched caller passes the precomputed parity — already counted by
        # the extern's batch call.
        if parity is None:
            parity = code.parity_of_basis_fast(basis)
            self._crc.record_invocation()
        codeword = (basis << code.m) | parity
        # Steps ➎/➏: syndrome table metadata + the XOR mask.  The
        # interpreted program looks this table up without a timestamp
        # (``lookup(syndrome)``), so the fast path records the same 0.0.
        syndrome_table = self._syndrome_table
        syndrome_table.lookups += 1
        syndrome_table.hits += 1
        entry = self._fast_syndrome_entries[syndrome]
        entry.last_hit = 0.0
        entry.hit_count += 1
        body = codeword ^ self._fast_flip_masks[syndrome]
        chunk_value = (prefix << code.n) | body
        return (
            frame[:12]
            + self._fast_eth_raw
            + chunk_value.to_bytes(self._fast_chunk_bytes, "big")
            + frame[header_end:]
        )
