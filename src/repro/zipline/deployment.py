"""End-to-end ZipLine deployment: hosts, two switches, control plane.

The deployment reproduces the paper's testbed topology in simulated form::

    sender host ──> [ZipLine encoder switch] ──(tapped 100 GbE hop)──>
                    [ZipLine decoder switch] ──> receiver host

The hop between the two switches is the one whose traffic ZipLine reduces;
a :class:`~repro.zipline.stats.LinkTap` records every frame crossing it so
the Figure 3 byte accounting and the dynamic-learning timing can be read
off directly.  The control plane is attached to the encoder's digest engine
and writes mappings into both switches with the configured latencies.

The deployment is the ``paper-testbed`` preset of the general topology
layer: its hosts, switches and the tapped inter-switch hop are wired
through a :class:`~repro.topology.graph.TopologyGraph` (with *direct*
edges — no link emulation, exactly the original synchronous wiring), so
the two-switch testbed and arbitrary graph topologies share one wiring
implementation.

Three scenarios map onto the paper's Figure 3 bars:

* ``no_table`` — the control plane never installs mappings (digest handling
  disabled), every processed packet stays type 2;
* ``static`` — the mappings for every basis in the trace are installed
  before the replay starts;
* ``dynamic`` — mappings are learned from digests during the replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.controlplane.manager import ControlPlaneTimings, ZipLineControlPlane
from repro.core.transform import GDTransform
from repro.exceptions import ReproError
from repro.net.ethernet import EthernetFrame
from repro.net.mac import MacAddress
from repro.net.packets import PacketKind, classify_frame
from repro.sim.simulator import Simulator
from repro.tofino.digest import DEFAULT_DELIVERY_LATENCY, DigestEngine
from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK
from repro.zipline.stats import CompressionSummary, LinkTap

__all__ = ["DeploymentScenario", "ReceiverHost", "ZipLineDeployment"]


class DeploymentScenario(Enum):
    """Figure 3 scenario selector."""

    NO_TABLE = "no_table"
    STATIC = "static"
    DYNAMIC = "dynamic"

    @classmethod
    def from_name(cls, name: "str | DeploymentScenario") -> "DeploymentScenario":
        """Parse a scenario from its name or pass an instance through."""
        if isinstance(name, DeploymentScenario):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(scenario.value for scenario in cls)
            raise ReproError(
                f"unknown scenario {name!r}; valid scenarios: {valid}"
            ) from None


@dataclass
class ReceivedFrame:
    """A frame delivered to the receiver host."""

    time: float
    frame: EthernetFrame
    kind: PacketKind


class ReceiverHost:
    """The destination server: collects delivered frames and their payloads."""

    def __init__(self, name: str = "receiver"):
        self.name = name
        self.frames: List[ReceivedFrame] = []

    def deliver(self, frame_bytes: bytes, time: float) -> None:
        """Port-sink callback attached to the decoder's host-facing port."""
        frame = EthernetFrame.from_bytes(frame_bytes)
        self.frames.append(
            ReceivedFrame(time=time, frame=frame, kind=classify_frame(frame))
        )

    def received_chunks(self) -> List[bytes]:
        """Payloads of every received raw-chunk frame, in arrival order."""
        return [
            record.frame.payload
            for record in self.frames
            if record.frame.ethertype == ETHERTYPE_RAW_CHUNK
        ]

    def clear(self) -> None:
        """Forget every delivered frame."""
        self.frames.clear()


class ZipLineDeployment:
    """Two ZipLine switches, a control plane and a pair of hosts.

    Parameters
    ----------
    scenario:
        ``no_table``, ``static`` or ``dynamic``.
    transform:
        GD transform (defaults to the paper's ``m = 8`` / 256-bit chunks).
    identifier_bits:
        Identifier width (15 in the paper).
    static_bases:
        Bases to preload when the scenario is ``static``.
    digest_latency / timings:
        Latency model of the learning path; the defaults reproduce the
        paper's 1.77 ms.
    entry_ttl:
        Idle TTL for encoder entries (``None`` disables expiry-based
        recycling; LRU recycling on pool exhaustion still applies).
    """

    SENDER_PORT = 0          # encoder port facing the sender host
    INTER_SWITCH_PORT = 1    # encoder port facing the decoder switch
    DECODER_IN_PORT = 0      # decoder port facing the encoder switch
    RECEIVER_PORT = 1        # decoder port facing the receiver host

    def __init__(
        self,
        scenario: "str | DeploymentScenario" = DeploymentScenario.DYNAMIC,
        transform: Optional[GDTransform] = None,
        identifier_bits: int = 15,
        static_bases: Optional[Iterable[int]] = None,
        digest_latency: float = DEFAULT_DELIVERY_LATENCY,
        timings: Optional[ControlPlaneTimings] = None,
        entry_ttl: Optional[float] = None,
        seed: Optional[int] = 0,
    ):
        self.scenario = DeploymentScenario.from_name(scenario)
        self.transform = transform or GDTransform(order=8)
        self.identifier_bits = identifier_bits
        self.simulator = Simulator()

        self.sender_mac = MacAddress("02:00:00:00:00:01")
        self.receiver_mac = MacAddress("02:00:00:00:00:02")

        digest_engine = DigestEngine(self.simulator, delivery_latency=digest_latency)
        self.encoder = ZipLineEncoderSwitch(
            name="encoder",
            transform=self.transform,
            identifier_bits=identifier_bits,
            simulator=self.simulator,
            forwarding={self.SENDER_PORT: self.INTER_SWITCH_PORT},
            default_egress_port=self.INTER_SWITCH_PORT,
            entry_ttl=entry_ttl,
            digest_engine=digest_engine,
        )
        self.decoder = ZipLineDecoderSwitch(
            name="decoder",
            transform=self.transform,
            identifier_bits=identifier_bits,
            simulator=self.simulator,
            forwarding={self.DECODER_IN_PORT: self.RECEIVER_PORT},
            default_egress_port=self.RECEIVER_PORT,
        )

        self.link_tap = LinkTap()
        self.receiver = ReceiverHost()
        self._wire_topology()

        self.control_plane: Optional[ZipLineControlPlane] = None
        if self.scenario is not DeploymentScenario.NO_TABLE:
            self.control_plane = ZipLineControlPlane(
                digest_engine=digest_engine,
                encoder_switch=self.encoder,
                decoder_switch=self.decoder,
                simulator=self.simulator,
                identifier_bits=identifier_bits,
                entry_ttl=entry_ttl,
                timings=timings,
                seed=seed,
            )
        if self.scenario is DeploymentScenario.STATIC:
            if static_bases is None:
                raise ReproError("the static scenario requires static_bases")
            self.control_plane.preload_static_mappings(static_bases)

        self._chunks_sent = 0
        self._payload_bytes_sent = 0

    # -- wiring ------------------------------------------------------------------

    def _wire_topology(self) -> None:
        """Build the two-switch testbed as a (direct-edged) topology graph."""
        # Imported lazily: repro.topology pulls in repro.replay, whose
        # harness imports this module for DeploymentScenario.
        from repro.topology.graph import TopologyGraph
        from repro.topology.nodes import ZipLineDecoderNode, ZipLineEncoderNode

        graph = TopologyGraph(self.simulator)
        graph.add_node(ZipLineEncoderNode("encoder", switch=self.encoder))
        graph.add_node(ZipLineDecoderNode("decoder", switch=self.decoder))
        graph.add_edge(
            "encoder", self.INTER_SWITCH_PORT, "decoder", self.DECODER_IN_PORT,
            tap=self.link_tap,
        )
        graph.add_edge("decoder", self.RECEIVER_PORT, self.receiver.deliver)
        graph.wire()
        self.graph = graph

    # -- traffic injection -----------------------------------------------------------

    def build_chunk_frame(self, chunk: bytes) -> EthernetFrame:
        """Wrap a chunk payload into a raw-chunk Ethernet frame."""
        if len(chunk) != self.transform.chunk_bytes:
            raise ReproError(
                f"chunk of {len(chunk)} bytes does not match the configured "
                f"{self.transform.chunk_bytes}-byte chunks"
            )
        return EthernetFrame(
            destination=self.receiver_mac,
            source=self.sender_mac,
            ethertype=ETHERTYPE_RAW_CHUNK,
            payload=chunk,
        )

    def send_chunk(self, chunk: bytes, at_time: Optional[float] = None) -> None:
        """Schedule the injection of one chunk at ``at_time`` (now by default)."""
        frame_bytes = self.build_chunk_frame(chunk).to_bytes()
        self._chunks_sent += 1
        self._payload_bytes_sent += len(chunk)

        def inject(frame_bytes=frame_bytes) -> None:
            self.encoder.receive(frame_bytes, self.SENDER_PORT)

        if at_time is None or at_time <= self.simulator.now:
            self.simulator.schedule_now(inject, description="inject chunk")
        else:
            self.simulator.schedule_at(at_time, inject, description="inject chunk")

    def replay_chunks(
        self,
        chunks: Sequence[bytes],
        packet_rate: float,
        start_time: float = 0.0,
    ) -> None:
        """Schedule a constant-rate replay of ``chunks`` (packets per second)."""
        if packet_rate <= 0:
            raise ReproError(f"packet rate must be positive, got {packet_rate}")
        interval = 1.0 / packet_rate
        for index, chunk in enumerate(chunks):
            self.send_chunk(chunk, at_time=start_time + index * interval)

    # -- execution ---------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation until the event queue drains (or ``until``)."""
        self.simulator.run(until=until)

    def replay_and_run(
        self,
        chunks: Sequence[bytes],
        packet_rate: float = 1_000_000.0,
    ) -> CompressionSummary:
        """Replay a chunk list, run to completion, and summarise the results."""
        self.replay_chunks(chunks, packet_rate)
        self.run()
        return self.summary()

    # -- results -----------------------------------------------------------------------

    def summary(self, dataset: str = "") -> CompressionSummary:
        """Figure-3 style summary of everything sent so far."""
        summary = CompressionSummary.from_link_tap(
            self.link_tap,
            original_payload_bytes=self._payload_bytes_sent,
            dataset=dataset,
            scenario=self.scenario.value,
        )
        summary.learning_time = self.learning_time()
        return summary

    def learning_time(self) -> Optional[float]:
        """Gap between the first type-2 and the first type-3 frame on the hop.

        This is exactly the paper's dynamic-learning measurement; ``None``
        when one of the two packet types never appeared.
        """
        first_uncompressed = self.link_tap.first_time_of_kind(
            PacketKind.PROCESSED_UNCOMPRESSED
        )
        first_compressed = self.link_tap.first_time_of_kind(
            PacketKind.PROCESSED_COMPRESSED
        )
        if first_uncompressed is None or first_compressed is None:
            return None
        return max(0.0, first_compressed - first_uncompressed)

    def verify_lossless(self, original_chunks: Sequence[bytes]) -> bool:
        """True when the receiver got every chunk back, bit exact and in order."""
        received = self.receiver.received_chunks()
        if len(received) != len(original_chunks):
            return False
        return all(got == sent for got, sent in zip(received, original_chunks))

    def reset_traffic(self) -> None:
        """Clear taps, receiver state and counters, keeping learned mappings."""
        self.link_tap.clear()
        self.receiver.clear()
        self._chunks_sent = 0
        self._payload_bytes_sent = 0
