"""Header definitions shared by the ZipLine encoder and decoder programs.

The wire formats are derived from the GD transform parameters:

* ``ethernet_h`` — the standard 14-byte Ethernet header;
* ``chunk_h`` — a raw (type-1) chunk: the verbatim prefix bits followed by
  the ``n`` bits that go through the Hamming code (256 bits total for the
  paper's parameters);
* ``type2_h`` — processed, uncompressed: prefix, basis, syndrome, plus the
  explicit padding bits the byte-alignment constraint requires;
* ``type3_h`` — processed, compressed: prefix, identifier, syndrome, plus
  padding when needed (none for the paper's parameters).

Raw chunks travel under the dedicated :data:`ETHERTYPE_RAW_CHUNK` EtherType;
this is how the trace replays mark packets that the encoder should process
(any other EtherType is forwarded untouched, like a regular switch would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bits import align_up
from repro.core.transform import GDTransform
from repro.exceptions import PacketError
from repro.net.ethernet import EtherType
from repro.tofino.parser import HeaderType

__all__ = [
    "ETHERTYPE_RAW_CHUNK",
    "RAW_CHUNK_ETHERTYPE_BYTES",
    "raw_chunk_payload",
    "ZipLineHeaderSet",
]

#: EtherType marking a raw, yet-unprocessed chunk payload (packet type 1 in
#: the paper's terminology, restricted to the payloads ZipLine processes).
ETHERTYPE_RAW_CHUNK = 0x88B4

#: The same EtherType as the two wire bytes of an Ethernet header.
RAW_CHUNK_ETHERTYPE_BYTES = ETHERTYPE_RAW_CHUNK.to_bytes(2, "big")


def raw_chunk_payload(frame_bytes: bytes) -> Optional[bytes]:
    """Payload of a raw-chunk frame, or ``None`` for any other frame.

    The one place that knows how a raw chunk sits inside an Ethernet frame;
    the replay accounting, integrity matching and CLI base extraction all
    parse through here so the layout cannot silently diverge.
    """
    if frame_bytes[12:14] != RAW_CHUNK_ETHERTYPE_BYTES:
        return None
    return frame_bytes[14:]


@dataclass(frozen=True)
class ZipLineHeaderSet:
    """The four header types used by the ZipLine programs.

    Built from a :class:`~repro.core.transform.GDTransform` plus the
    identifier width; exposes the byte sizes the evaluation needs (e.g. the
    33-byte type-2 and 3-byte type-3 payloads behind Figure 3).
    """

    ethernet: HeaderType
    chunk: HeaderType
    type2: HeaderType
    type3: HeaderType
    prefix_bits: int
    body_bits: int
    basis_bits: int
    syndrome_bits: int
    identifier_bits: int
    type2_padding_bits: int
    type3_padding_bits: int

    @classmethod
    def build(
        cls,
        transform: GDTransform,
        identifier_bits: int = 15,
        type2_padding_bits: Optional[int] = None,
    ) -> "ZipLineHeaderSet":
        """Derive the header set from transform parameters.

        ``type2_padding_bits`` defaults to the minimum padding that byte
        aligns the type-2 header, with the paper's one extra byte when the
        fields happen to be aligned already (the measured 3 % overhead).
        """
        if identifier_bits <= 0:
            raise PacketError("identifier_bits must be positive")

        prefix_bits = transform.prefix_bits
        body_bits = transform.code.n
        basis_bits = transform.basis_bits
        syndrome_bits = transform.deviation_bits

        ethernet = HeaderType(
            "ethernet_h",
            [("dst_addr", 48), ("src_addr", 48), ("ether_type", 16)],
        )

        chunk_fields = []
        if prefix_bits:
            chunk_fields.append(("prefix", prefix_bits))
        chunk_fields.append(("body", body_bits))
        chunk = HeaderType("chunk_h", chunk_fields)

        raw_type2 = prefix_bits + basis_bits + syndrome_bits
        if type2_padding_bits is None:
            type2_padding_bits = align_up(raw_type2, 8) - raw_type2
            if type2_padding_bits == 0:
                type2_padding_bits = 8
        if (raw_type2 + type2_padding_bits) % 8:
            raise PacketError(
                f"type-2 header of {raw_type2} bits cannot be aligned with "
                f"{type2_padding_bits} padding bits"
            )
        type2_fields = []
        if prefix_bits:
            type2_fields.append(("prefix", prefix_bits))
        type2_fields.extend([("basis", basis_bits), ("syndrome", syndrome_bits)])
        if type2_padding_bits:
            type2_fields.append(("pad", type2_padding_bits))
        type2 = HeaderType("zipline_type2_h", type2_fields)

        raw_type3 = prefix_bits + identifier_bits + syndrome_bits
        type3_padding_bits = align_up(raw_type3, 8) - raw_type3
        type3_fields = []
        if prefix_bits:
            type3_fields.append(("prefix", prefix_bits))
        type3_fields.extend(
            [("identifier", identifier_bits), ("syndrome", syndrome_bits)]
        )
        if type3_padding_bits:
            type3_fields.append(("pad", type3_padding_bits))
        type3 = HeaderType("zipline_type3_h", type3_fields)

        return cls(
            ethernet=ethernet,
            chunk=chunk,
            type2=type2,
            type3=type3,
            prefix_bits=prefix_bits,
            body_bits=body_bits,
            basis_bits=basis_bits,
            syndrome_bits=syndrome_bits,
            identifier_bits=identifier_bits,
            type2_padding_bits=type2_padding_bits,
            type3_padding_bits=type3_padding_bits,
        )

    # -- payload sizes -----------------------------------------------------------

    @property
    def chunk_payload_bytes(self) -> int:
        """Payload bytes of a type-1 (raw chunk) packet."""
        return self.chunk.total_bytes

    @property
    def type2_payload_bytes(self) -> int:
        """Payload bytes of a type-2 packet."""
        return self.type2.total_bytes

    @property
    def type3_payload_bytes(self) -> int:
        """Payload bytes of a type-3 packet."""
        return self.type3.total_bytes

    def describe(self) -> str:
        """One-line summary of the wire formats."""
        return (
            f"chunk={self.chunk_payload_bytes}B, "
            f"type2={self.type2_payload_bytes}B "
            f"(pad {self.type2_padding_bits} bits), "
            f"type3={self.type3_payload_bytes}B "
            f"(pad {self.type3_padding_bits} bits)"
        )
