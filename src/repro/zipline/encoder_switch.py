"""The ZipLine *encoding* switch: the P4-equivalent compression program.

This module assembles the Figure 1 workflow out of the Tofino primitives
modelled in :mod:`repro.tofino`:

1. the parser extracts the Ethernet header and, for frames carrying the
   :data:`~repro.zipline.headers.ETHERTYPE_RAW_CHUNK` EtherType, the raw
   chunk header (➊);
2. the CRC extern configured with the Hamming generator polynomial computes
   the syndrome (➋);
3. a const-entry table maps the syndrome to the single-bit XOR mask (➌) and
   the mask is applied to obtain the codeword (➍), whose top ``k`` bits are
   the basis (➎);
4. the basis → identifier table is consulted (➏); on a hit the packet is
   rewritten as a type-3 header (➐,➑); on a miss it becomes a type-2 header
   and a learn digest is emitted towards the control plane;
5. already-processed frames (type 2/3) and frames with any other EtherType
   are forwarded unchanged.

The class exposes the narrow control-plane interface
(:meth:`install_basis_mapping`, :meth:`remove_basis_mapping`,
:meth:`expired_bases`) that :class:`repro.controlplane.ZipLineControlPlane`
drives, plus the per-packet-type counters the paper's statistics rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro import obs as _obs
from repro.controlplane.manager import LEARN_DIGEST
from repro.core.bits import mask
from repro.core.crc import prefix_syndrome_table
from repro.core.transform import GDTransform
from repro.exceptions import PipelineError
from repro.net.ethernet import EtherType
from repro.sim.simulator import Simulator
from repro.tofino.constraints import ResourceUsage
from repro.tofino.counters import NamedCounterSet
from repro.tofino.crc_extern import CrcExtern, CrcPolynomial
from repro.tofino.digest import DigestEngine
from repro.tofino.parser import ACCEPT, Deparser, Header, Parser, ParserState
from repro.tofino.pipeline import PacketContext, Pipeline, PipelineResult
from repro.tofino.switch import TofinoSwitch
from repro.tofino.tables import ActionSpec, MatchActionTable
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK, ZipLineHeaderSet

__all__ = ["ZipLineEncoderSwitch"]

#: Counter labels, mirroring the packet classifications of Section 5.
COUNTER_LABELS = [
    "raw_to_uncompressed",
    "raw_to_compressed",
    "passthrough_processed",
    "passthrough_other",
]


class ZipLineEncoderSwitch:
    """A Tofino switch running the ZipLine encoding program.

    Parameters
    ----------
    name:
        Switch name.
    transform:
        GD transform describing chunk/basis/syndrome widths.
    identifier_bits:
        Identifier width ``t`` (dictionary capacity ``2**t``).
    simulator:
        Optional shared simulator for latency modelling.
    forwarding:
        Static ingress-port → egress-port map (the experiments wire port 0
        towards the sender and port 1 towards the receiver).
    default_egress_port:
        Egress port when the ingress port has no forwarding entry.
    entry_ttl:
        Default TTL attached to basis → identifier entries (idle timeout).
    """

    def __init__(
        self,
        name: str = "zipline-encoder",
        transform: Optional[GDTransform] = None,
        identifier_bits: int = 15,
        simulator: Optional[Simulator] = None,
        forwarding: Optional[Dict[int, int]] = None,
        default_egress_port: int = 1,
        entry_ttl: Optional[float] = None,
        digest_engine: Optional[DigestEngine] = None,
        fast: Optional[bool] = None,
        port_count: Optional[int] = None,
    ):
        self._transform = transform or GDTransform(order=8)
        self._identifier_bits = identifier_bits
        self._headers = ZipLineHeaderSet.build(self._transform, identifier_bits)
        self._forwarding = dict(forwarding or {})
        self._default_egress_port = default_egress_port
        self._entry_ttl = entry_ttl
        self._simulator = simulator

        code = self._transform.code
        self._syndrome_bits = code.m
        self._basis_shift = code.m
        self._body_mask = mask(code.n)

        # CRC extern programmed with the Hamming generator polynomial.
        self._crc = CrcExtern(
            CrcPolynomial(coeff=code.crc_parameter, width=code.m)
        )

        self._syndrome_table = self._build_syndrome_table()
        self._basis_table = self._build_basis_table()
        self.counters = NamedCounterSet(COUNTER_LABELS, name=f"{name}-counters")

        pipeline = Pipeline(
            name=f"{name}-pipeline",
            parser=self._build_parser(),
            ingress=self._ingress,
            deparser=Deparser(
                ["ethernet", "type3", "type2", "chunk"]
            ),
        )
        self._register_resources(pipeline)
        switch_kwargs = {} if port_count is None else {"port_count": port_count}
        self.switch = TofinoSwitch(
            name=name,
            pipeline=pipeline,
            simulator=simulator,
            digest_engine=digest_engine or DigestEngine(simulator),
            **switch_kwargs,
        )
        self._build_fast_path(fast)

    def _build_fast_path(self, fast: Optional[bool]) -> None:
        """Precompute the compiled per-frame fast path (the XOR-network view).

        The generic pipeline interprets the program packet by packet:
        parser state machine, header objects, table dispatch, deparser.
        The fast path is the same program *compiled down to integer
        arithmetic over the frame bytes* — exactly what the P4 compiler
        does for the ASIC — with every counter, table hit-metadata update
        and digest emission kept bit-identical (the equivalence is property
        tested).  Defaults to the transform's ``fast`` flag, so
        ``GDTransform(fast=False)`` or ``REPRO_GD_FAST=0`` selects the
        interpreted reference path everywhere.
        """
        transform = self._transform
        code = transform.code
        if fast is None:
            fast = transform.fast
        headers = self._headers
        chunk_bytes = headers.chunk.total_bytes
        prefix_bits = transform.prefix_bits
        # Per-prefix syndrome correction: syndrome(chunk) = syndrome(body)
        # ^ syndrome(prefix << n); prefixes wider than a byte never occur
        # in a byte-aligned header set but stay on the interpreted path.
        # Shared with GDTransform through the process-wide registry.
        self._fast_prefix_syndromes: Optional[tuple] = None
        if fast and prefix_bits <= 8:
            self._fast_prefix_syndromes = prefix_syndrome_table(
                code.full_polynomial, code.n, prefix_bits
            )
        syndrome_entries = [
            self._syndrome_table.get_entry(syndrome)
            for syndrome in range(1 << code.m)
        ]
        self._fast_enabled = bool(
            fast
            and self._fast_prefix_syndromes is not None
            and all(entry is not None for entry in syndrome_entries)
        )
        if not self._fast_enabled:
            return
        self._fast_syndrome_entries = syndrome_entries
        self._fast_flip_masks = tuple(
            entry.params.get("flip_mask", 0) for entry in syndrome_entries
        )
        self._fast_remainder = code.byte_remainder
        self._fast_chunk_header_bytes = chunk_bytes
        self._fast_min_chunk_frame = 14 + chunk_bytes
        self._fast_eth_raw = ETHERTYPE_RAW_CHUNK.to_bytes(2, "big")
        self._fast_eth_type2 = int(EtherType.ZIPLINE_UNCOMPRESSED).to_bytes(2, "big")
        self._fast_eth_type3 = int(EtherType.ZIPLINE_COMPRESSED).to_bytes(2, "big")
        self._fast_type2_bytes = headers.type2.total_bytes
        self._fast_type3_bytes = headers.type3.total_bytes
        self._fast_type2_pad = headers.type2_padding_bits
        self._fast_type3_pad = headers.type3_padding_bits
        self._fast_min_type2_frame = 14 + self._fast_type2_bytes
        self._fast_min_type3_frame = 14 + self._fast_type3_bytes

    # -- program construction ---------------------------------------------------

    def _build_parser(self) -> Parser:
        headers = self._headers
        states = [
            ParserState(
                name="start",
                extract=("ethernet", headers.ethernet),
                select_field=("ethernet", "ether_type"),
                transitions={
                    ETHERTYPE_RAW_CHUNK: "parse_chunk",
                    EtherType.ZIPLINE_UNCOMPRESSED: "parse_type2",
                    EtherType.ZIPLINE_COMPRESSED: "parse_type3",
                },
                default=ACCEPT,
            ),
            ParserState(name="parse_chunk", extract=("chunk", headers.chunk)),
            ParserState(name="parse_type2", extract=("type2", headers.type2)),
            ParserState(name="parse_type3", extract=("type3", headers.type3)),
        ]
        return Parser(states, start="start")

    def _build_syndrome_table(self) -> MatchActionTable:
        """The const-entry syndrome → XOR-mask table (step ➌ of Figure 1)."""
        code = self._transform.code
        table = MatchActionTable(
            name="syndrome_mask",
            key_bits=code.m,
            size=1 << code.m,
            actions=[ActionSpec("set_mask", ("flip_mask",)), ActionSpec("NoAction")],
            default_action="NoAction",
        )
        rows = (
            (syndrome, "set_mask", {"flip_mask": code.error_mask(syndrome)})
            for syndrome in range(1 << code.m)
            if syndrome == 0 or code.error_position(syndrome) is not None
        )
        table.add_const_entries(rows)
        return table

    def _build_basis_table(self) -> MatchActionTable:
        """The basis → identifier exact-match table managed by the control plane."""
        return MatchActionTable(
            name="basis_to_id",
            key_bits=self._transform.basis_bits,
            size=1 << self._identifier_bits,
            actions=[ActionSpec("set_identifier", ("identifier",)), ActionSpec("learn")],
            default_action="learn",
            support_idle_timeout=True,
        )

    def _register_resources(self, pipeline: Pipeline) -> None:
        """Account the program's tables against the Tofino resource budget."""
        tracker = pipeline.resources
        tracker.register(
            ResourceUsage(
                name="syndrome_mask",
                stage=1,
                sram_blocks=tracker.sram_blocks_for_table(
                    entries=1 << self._syndrome_bits,
                    key_bits=self._syndrome_bits,
                    action_bits=min(self._transform.code.n, 256),
                ),
                entries=1 << self._syndrome_bits,
            )
        )
        tracker.register(
            ResourceUsage(
                name="basis_to_id",
                stage=3,
                sram_blocks=min(
                    tracker.profile.sram_blocks_per_stage,
                    tracker.sram_blocks_for_table(
                        entries=1 << self._identifier_bits,
                        key_bits=self._transform.basis_bits,
                        action_bits=self._identifier_bits,
                    ),
                ),
                entries=1 << self._identifier_bits,
            )
        )

    # -- the ingress control block -----------------------------------------------------

    def _ingress(self, context: PacketContext) -> None:
        packet = context.packet
        now = self._simulator.now if self._simulator is not None else 0.0
        ethernet = packet.header("ethernet")
        frame_bytes = 14 + sum(
            header.header_type.total_bytes
            for header in packet.headers.values()
            if header.valid and header.header_type.name != "ethernet_h"
        ) + len(packet.payload)

        if packet.has_valid("chunk"):
            self._encode_chunk(context, ethernet, now, frame_bytes)
        elif packet.has_valid("type2") or packet.has_valid("type3"):
            self.counters.count("passthrough_processed", frame_bytes)
        else:
            self.counters.count("passthrough_other", frame_bytes)

        context.send_to_port(
            self._forwarding.get(context.ingress_port, self._default_egress_port)
        )

    def _encode_chunk(
        self,
        context: PacketContext,
        ethernet: Header,
        now: float,
        frame_bytes: int,
    ) -> None:
        packet = context.packet
        chunk = packet.header("chunk")
        body = chunk["body"]
        prefix = chunk["prefix"] if self._transform.prefix_bits else 0

        # Step ➋: syndrome through the CRC extern.
        syndrome = self._crc.get((body, self._transform.code.n))
        # Steps ➌/➍: constant table gives the flip mask, XOR restores the codeword.
        result = self._syndrome_table.lookup(syndrome, now=now)
        flip_mask = result.params.get("flip_mask", 0)
        codeword = body ^ flip_mask
        # Step ➎: the basis is the message part of the codeword.
        basis = codeword >> self._basis_shift

        chunk.valid = False
        lookup = self._basis_table.lookup(basis, now=now)
        if lookup.hit and lookup.action == "set_identifier":
            identifier = lookup.params["identifier"]
            type3 = Header(self._headers.type3)
            if self._transform.prefix_bits:
                type3["prefix"] = prefix
            type3["identifier"] = identifier
            type3["syndrome"] = syndrome
            type3.valid = True
            packet.headers["type3"] = type3
            ethernet["ether_type"] = EtherType.ZIPLINE_COMPRESSED
            self.counters.count("raw_to_compressed", frame_bytes)
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.span(
                    "encode",
                    self.switch.name,
                    now,
                    now + self.switch.pipeline.pipeline_latency,
                    args={"outcome": "hit", "identifier": identifier, "basis": basis},
                )
        else:
            type2 = Header(self._headers.type2)
            if self._transform.prefix_bits:
                type2["prefix"] = prefix
            type2["basis"] = basis
            type2["syndrome"] = syndrome
            type2.valid = True
            packet.headers["type2"] = type2
            ethernet["ether_type"] = EtherType.ZIPLINE_UNCOMPRESSED
            context.emit_digest(LEARN_DIGEST, {"basis": basis})
            self.counters.count("raw_to_uncompressed", frame_bytes)
            tracer = _obs.TRACER
            if tracer.enabled:
                tracer.span(
                    "encode",
                    self.switch.name,
                    now,
                    now + self.switch.pipeline.pipeline_latency,
                    args={"outcome": "miss", "basis": basis},
                )

    # -- control-plane interface ------------------------------------------------------

    def install_basis_mapping(
        self, basis: Hashable, identifier: int, ttl: Optional[float] = None
    ) -> None:
        """Install (or refresh) a basis → identifier entry."""
        now = self._simulator.now if self._simulator is not None else 0.0
        existing = self._basis_table.get_entry(basis)
        if existing is not None:
            self._basis_table.modify_entry(
                basis, "set_identifier", {"identifier": identifier}
            )
            return
        self._basis_table.add_entry(
            basis,
            "set_identifier",
            {"identifier": identifier},
            ttl=ttl if ttl is not None else self._entry_ttl,
            now=now,
        )

    def remove_basis_mapping(self, basis: Hashable) -> None:
        """Remove a basis → identifier entry (no-op when absent)."""
        if self._basis_table.get_entry(basis) is not None:
            self._basis_table.delete_entry(basis)

    def expired_bases(self, now: float) -> List[Hashable]:
        """Bases whose entries report an idle timeout."""
        return [entry.key for entry in self._basis_table.expired_entries(now)]

    # -- convenience -----------------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transform the program was built with."""
        return self._transform

    @property
    def headers(self) -> ZipLineHeaderSet:
        """The header set (payload sizes) of the program."""
        return self._headers

    @property
    def basis_table(self) -> MatchActionTable:
        """The basis → identifier table (for tests and telemetry)."""
        return self._basis_table

    @property
    def digest_engine(self) -> DigestEngine:
        """The digest engine of the underlying switch."""
        return self.switch.digest_engine

    @property
    def pipeline(self) -> Pipeline:
        """The underlying pipeline."""
        return self.switch.pipeline

    @property
    def simulator(self) -> Optional[Simulator]:
        """The shared simulator this switch schedules against (if any)."""
        return self._simulator

    def set_forwarding(self, ingress_port: int, egress_port: int) -> None:
        """Add or change a static forwarding entry."""
        if ingress_port < 0 or egress_port < 0:
            raise PipelineError("ports must be non-negative")
        self._forwarding[ingress_port] = egress_port

    def receive(self, frame: bytes, ingress_port: int):
        """Process one frame.

        Frames matching the compiled fast path's preconditions go through
        the fused integer path; everything else (short frames, disabled
        fast path) falls back to the interpreted pipeline.  Both paths
        produce identical frames, counters, table metadata and digests.
        """
        if self._fast_enabled:
            result = self._fast_receive(frame, ingress_port)
            if result is not None:
                return result
        return self.switch.receive(frame, ingress_port)

    def receive_batch(self, frames: List[bytes], ingress_port: int) -> List[object]:
        """Process co-resident frames, batching the per-chunk CRC work.

        Every raw-chunk frame long enough for the fast path contributes its
        chunk to **one** whole-buffer syndrome computation
        (:meth:`CrcExtern.get_batch`, vectorized under an accelerated
        backend); the frames are then finished strictly in arrival order
        with the precomputed remainders, so counters, table metadata,
        digest emission and transmit order — and every emitted frame — are
        identical to calling :meth:`receive` once per frame.  Ineligible
        frames transparently take the per-frame path.
        """
        switch = self.switch
        if (
            not self._fast_enabled
            or not 0 <= ingress_port < switch.port_count
            or len(frames) < 2
        ):
            return [self.receive(frame, ingress_port) for frame in frames]
        eth_raw = self._fast_eth_raw
        min_chunk = self._fast_min_chunk_frame
        chunk_bytes = self._fast_chunk_header_bytes
        eligible = [
            index
            for index, frame in enumerate(frames)
            if len(frame) >= min_chunk and frame[12:14] == eth_raw
        ]
        remainders: Dict[int, int] = {}
        if len(eligible) >= 2:
            buffer = b"".join(
                frames[index][14 : 14 + chunk_bytes] for index in eligible
            )
            remainders = dict(
                zip(eligible, self._crc.get_batch(buffer, 8 * chunk_bytes))
            )
        results = []
        append = results.append
        for index, frame in enumerate(frames):
            remainder = remainders.get(index)
            if remainder is not None:
                append(self._fast_receive(frame, ingress_port, remainder=remainder))
            else:
                append(self.receive(frame, ingress_port))
        return results

    def _fast_receive(
        self, frame: bytes, ingress_port: int, remainder: Optional[int] = None
    ):
        """Compiled per-frame path; returns ``None`` to defer to the pipeline."""
        switch = self.switch
        if not 0 <= ingress_port < switch.port_count:
            return None
        length = len(frame)
        if length < 14:
            return None
        ethertype = frame[12:14]
        pipeline = switch.pipeline
        simulator = self._simulator
        now = simulator.now if simulator is not None else 0.0

        if ethertype == self._fast_eth_raw:
            if length < self._fast_min_chunk_frame:
                # Too short for the chunk header: let the interpreted parser
                # produce its exact error/drop accounting.
                return None
            chunk_end = self._fast_min_chunk_frame
            chunk_slice = frame[14:chunk_end]
            transform = self._transform
            code = transform.code
            n = code.n
            chunk_value = int.from_bytes(chunk_slice, "big")
            prefix = chunk_value >> n
            body = chunk_value & self._body_mask
            # Step ➋: syndrome through the shared CRC byte loop (same unit
            # the extern reduces with); keep the extern's accounting.  A
            # batched caller passes the precomputed remainder — already
            # counted by the extern's batch call.
            if remainder is None:
                remainder = self._fast_remainder(chunk_slice)
                self._crc.record_invocation()
            syndrome = remainder ^ self._fast_prefix_syndromes[prefix]
            # Step ➌: const syndrome→mask table, with hit metadata.
            syndrome_table = self._syndrome_table
            syndrome_table.lookups += 1
            syndrome_table.hits += 1
            entry = self._fast_syndrome_entries[syndrome]
            entry.last_hit = now
            entry.hit_count += 1
            # Steps ➍/➎: flip the deviated bit, keep the message bits.
            basis = (body ^ self._fast_flip_masks[syndrome]) >> self._basis_shift

            lookup = self._basis_table.lookup_ref(basis, now=now)
            digests = ()
            tracer = _obs.TRACER
            if lookup is not None and lookup.action == "set_identifier":
                value = (
                    ((prefix << self._identifier_bits) | lookup.params["identifier"])
                    << self._syndrome_bits
                ) | syndrome
                out = (
                    frame[:12]
                    + self._fast_eth_type3
                    + (value << self._fast_type3_pad).to_bytes(
                        self._fast_type3_bytes, "big"
                    )
                    + frame[chunk_end:]
                )
                self.counters.count("raw_to_compressed", length)
                if tracer.enabled:
                    tracer.span(
                        "encode",
                        switch.name,
                        now,
                        now + pipeline.pipeline_latency,
                        args={
                            "outcome": "hit",
                            "identifier": lookup.params["identifier"],
                            "basis": basis,
                        },
                    )
            else:
                value = (
                    ((prefix << self._transform.basis_bits) | basis)
                    << self._syndrome_bits
                ) | syndrome
                out = (
                    frame[:12]
                    + self._fast_eth_type2
                    + (value << self._fast_type2_pad).to_bytes(
                        self._fast_type2_bytes, "big"
                    )
                    + frame[chunk_end:]
                )
                digests = ((LEARN_DIGEST, {"basis": basis}),)
                self.counters.count("raw_to_uncompressed", length)
                if tracer.enabled:
                    tracer.span(
                        "encode",
                        switch.name,
                        now,
                        now + pipeline.pipeline_latency,
                        args={"outcome": "miss", "basis": basis},
                    )
        elif ethertype == self._fast_eth_type2:
            if length < self._fast_min_type2_frame:
                return None
            out = frame
            digests = ()
            self.counters.count("passthrough_processed", length)
        elif ethertype == self._fast_eth_type3:
            if length < self._fast_min_type3_frame:
                return None
            out = frame
            digests = ()
            self.counters.count("passthrough_processed", length)
        else:
            out = frame
            digests = ()
            self.counters.count("passthrough_other", length)

        switch.record_rx(ingress_port, length)
        pipeline.packets_processed += 1
        pipeline.parser.packets_parsed += 1
        for digest_type, data in digests:
            switch.digest_engine.emit(digest_type, data)
        egress = self._forwarding.get(ingress_port, self._default_egress_port)
        latency = pipeline.pipeline_latency
        switch.transmit(egress, out, latency)
        return PipelineResult(
            egress_port=egress, frame=out, digests=digests, latency=latency
        )

    def known_bases(self) -> List[Hashable]:
        """Bases currently present in the basis → identifier table."""
        return [entry.key for entry in self._basis_table.entries()]
