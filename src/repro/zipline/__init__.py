"""The deployed ZipLine system: encoder/decoder switch programs and topology."""

from repro.zipline.decoder_switch import ZipLineDecoderSwitch
from repro.zipline.deployment import (
    DeploymentScenario,
    ReceiverHost,
    ZipLineDeployment,
)
from repro.zipline.encoder_switch import ZipLineEncoderSwitch
from repro.zipline.headers import ETHERTYPE_RAW_CHUNK, ZipLineHeaderSet
from repro.zipline.stats import CompressionSummary, LinkTap, LinkTapRecord

__all__ = [
    "ZipLineDecoderSwitch",
    "DeploymentScenario",
    "ReceiverHost",
    "ZipLineDeployment",
    "ZipLineEncoderSwitch",
    "ETHERTYPE_RAW_CHUNK",
    "ZipLineHeaderSet",
    "CompressionSummary",
    "LinkTap",
    "LinkTapRecord",
]
