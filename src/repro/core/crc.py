"""Parameterised cyclic-redundancy-check (CRC) engine.

ZipLine computes Hamming syndromes with the CRC unit built into the Tofino
chip: when the CRC generator polynomial equals the Hamming generator
polynomial, the CRC of an ``n``-bit chunk *is* the Hamming syndrome
(Section 2 of the paper, Table 2).  The equivalence holds for the *plain
polynomial remainder*: ``CRC(B) = B(x) mod g(x)`` with no pre-multiplication
by ``x**m``, zero initial value, no reflection and no final XOR.

This module provides:

* :class:`CrcParameters` — the full parameter set of a CRC (polynomial,
  width, init, reflect-in/out, xor-out, augmentation), mirroring what the
  Tofino CRC extern exposes to P4 programs;
* :class:`CrcEngine` — polynomial-remainder fast path for the linear modes
  used by GD, a bit-serial Rocksoft-model reference for protocol CRCs
  (Ethernet FCS), and a byte-table-driven path for byte-aligned data;
* :func:`syndrome_crc` — the convenience constructor used by the GD code
  (plain remainder mode).

The different code paths are cross-checked in the test suite, including
property-based tests of CRC linearity (``crc(a ^ b) == crc(a) ^ crc(b)`` in
the linear modes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bits import BitVector, mask
from repro.exceptions import CodingError

__all__ = [
    "CrcParameters",
    "CrcEngine",
    "syndrome_crc",
    "reflect_bits",
    "polynomial_degree",
    "polynomial_str",
    "poly_mod",
    "poly_mul",
    "poly_mulmod",
    "poly_gcd",
    "is_primitive_polynomial",
    "CRC32_ETHERNET",
    "CRC16_CCITT",
    "CRC8_ATM",
]


def reflect_bits(value: int, width: int) -> int:
    """Reverse the bit order of ``value`` over ``width`` bits."""
    if value >> width:
        raise CodingError(f"value {value:#x} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def polynomial_degree(polynomial: int) -> int:
    """Degree of a polynomial given in full binary form (MSB = highest term)."""
    if polynomial <= 0:
        raise CodingError(f"polynomial must be positive, got {polynomial}")
    return polynomial.bit_length() - 1


def polynomial_str(polynomial: int) -> str:
    """Human-readable form of a binary polynomial, e.g. ``x^3 + x + 1``."""
    if polynomial <= 0:
        raise CodingError(f"polynomial must be positive, got {polynomial}")
    terms: List[str] = []
    for power in range(polynomial.bit_length() - 1, -1, -1):
        if (polynomial >> power) & 1:
            if power == 0:
                terms.append("1")
            elif power == 1:
                terms.append("x")
            else:
                terms.append(f"x^{power}")
    return " + ".join(terms)


def poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial division ``dividend mod divisor``."""
    if divisor <= 0:
        raise CodingError(f"divisor must be positive, got {divisor}")
    if dividend < 0:
        raise CodingError(f"dividend must be non-negative, got {dividend}")
    divisor_degree = polynomial_degree(divisor)
    while dividend and dividend.bit_length() - 1 >= divisor_degree:
        shift = dividend.bit_length() - 1 - divisor_degree
        dividend ^= divisor << shift
    return dividend


def poly_mul(left: int, right: int) -> int:
    """Carry-less (GF(2)) polynomial multiplication."""
    if left < 0 or right < 0:
        raise CodingError("polynomials must be non-negative")
    result = 0
    while right:
        if right & 1:
            result ^= left
        left <<= 1
        right >>= 1
    return result


def poly_mulmod(left: int, right: int, modulus: int) -> int:
    """GF(2) polynomial multiplication reduced modulo ``modulus``."""
    return poly_mod(poly_mul(left, right), modulus)


def poly_gcd(left: int, right: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while right:
        left, right = right, poly_mod(left, right)
    return left


def is_primitive_polynomial(full_polynomial: int) -> bool:
    """True when ``full_polynomial`` (with leading term) is primitive over GF(2).

    A degree-``m`` polynomial is primitive iff ``x`` generates the full
    multiplicative group of GF(2^m), i.e. the order of ``x`` modulo the
    polynomial is ``2**m - 1``.  Primitive polynomials are exactly the ones
    usable as Hamming-code generators with ``n = 2**m - 1``: every non-zero
    syndrome then corresponds to a distinct single-bit error position.
    """
    degree = polynomial_degree(full_polynomial)
    if degree == 0:
        return False
    order = (1 << degree) - 1
    # x^order must be 1, and x^(order/p) != 1 for every prime divisor p.
    if _poly_pow_x(order, full_polynomial) != 1:
        return False
    for prime in _prime_factors(order):
        if _poly_pow_x(order // prime, full_polynomial) == 1:
            return False
    return True


def _poly_pow_x(exponent: int, modulus: int) -> int:
    """Compute ``x**exponent mod modulus`` by square-and-multiply."""
    result = 1
    base = 2  # the polynomial "x"
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def _prime_factors(value: int) -> List[int]:
    """Distinct prime factors of ``value`` (trial division)."""
    factors: List[int] = []
    candidate = 2
    while candidate * candidate <= value:
        if value % candidate == 0:
            factors.append(candidate)
            while value % candidate == 0:
                value //= candidate
        candidate += 1
    if value > 1:
        factors.append(value)
    return factors


@dataclass(frozen=True)
class CrcParameters:
    """Complete description of a CRC variant.

    Attributes
    ----------
    polynomial:
        Generator polynomial *without* the implicit leading ``x**width``
        term, as conventionally specified (e.g. ``0x04C11DB7`` for CRC-32).
        This matches the "Parameter for CRC-m" column of Table 1 in the
        paper and the value programmed into the Tofino CRC extern.
    width:
        CRC width ``m`` in bits.
    init:
        Initial shift-register value.
    reflect_in / reflect_out:
        Input-byte / output reflection, as in the Rocksoft model.
    xor_out:
        Final XOR applied to the register.
    augment:
        When ``True`` the message is multiplied by ``x**width`` before the
        division (the classic "append m zero bits" CRC).  When ``False`` the
        plain polynomial remainder is computed — the mode that makes the CRC
        equal to a Hamming syndrome (Table 2 of the paper).
    """

    polynomial: int
    width: int
    init: int = 0
    reflect_in: bool = False
    reflect_out: bool = False
    xor_out: int = 0
    augment: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CodingError(f"CRC width must be positive, got {self.width}")
        if self.polynomial >> self.width:
            raise CodingError(
                f"polynomial {self.polynomial:#x} does not fit in "
                f"{self.width} bits (leading term is implicit)"
            )
        if self.polynomial == 0:
            raise CodingError("polynomial must be non-zero")
        if self.init >> self.width:
            raise CodingError(f"init {self.init:#x} does not fit in {self.width} bits")
        if self.xor_out >> self.width:
            raise CodingError(
                f"xor_out {self.xor_out:#x} does not fit in {self.width} bits"
            )
        if not self.augment and (
            self.init or self.xor_out or self.reflect_in or self.reflect_out
        ):
            raise CodingError(
                "plain-remainder (non-augmented) CRCs only support "
                "init=0, xor_out=0 and no reflection"
            )

    @property
    def full_polynomial(self) -> int:
        """Polynomial including the implicit leading ``x**width`` term."""
        return (1 << self.width) | self.polynomial

    @property
    def is_linear(self) -> bool:
        """True when ``crc(a ^ b) == crc(a) ^ crc(b)`` holds for this variant."""
        return self.init == 0 and self.xor_out == 0

    def describe(self) -> str:
        """One-line human-readable description of the parameter set."""
        label = self.name or f"CRC-{self.width}"
        return (
            f"{label}: poly={polynomial_str(self.full_polynomial)} "
            f"(0x{self.polynomial:X}), init=0x{self.init:X}, "
            f"refin={self.reflect_in}, refout={self.reflect_out}, "
            f"xorout=0x{self.xor_out:X}, augment={self.augment}"
        )


# Well-known parameter sets, used in tests and by the Ethernet FCS model.
CRC32_ETHERNET = CrcParameters(
    polynomial=0x04C11DB7,
    width=32,
    init=0xFFFFFFFF,
    reflect_in=True,
    reflect_out=True,
    xor_out=0xFFFFFFFF,
    augment=True,
    name="CRC-32/ETHERNET",
)

CRC16_CCITT = CrcParameters(
    polynomial=0x1021,
    width=16,
    init=0xFFFF,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x0000,
    augment=True,
    name="CRC-16/CCITT-FALSE",
)

CRC8_ATM = CrcParameters(
    polynomial=0x07,
    width=8,
    init=0x00,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x00,
    augment=True,
    name="CRC-8/ATM",
)


class CrcEngine:
    """CRC computation engine for arbitrary-width messages.

    Three code paths, cross-validated by the test suite:

    * linear modes (``init == 0``, no reflection, no final XOR) use direct
      GF(2) polynomial division over Python integers — this covers the GD
      syndrome computation on arbitrary, non byte-aligned widths;
    * the general Rocksoft model (init/reflect/xorout) uses a bit-serial
      reference implementation — this covers protocol CRCs such as the
      Ethernet frame check sequence;
    * byte-aligned data in the standard augmented mode can additionally use
      a byte-at-a-time lookup table (:meth:`compute_bytes`).
    """

    def __init__(self, parameters: CrcParameters):
        self._parameters = parameters
        self._table: Optional[List[int]] = None

    @property
    def parameters(self) -> CrcParameters:
        """The CRC parameter set this engine was built with."""
        return self._parameters

    @property
    def width(self) -> int:
        """CRC width in bits."""
        return self._parameters.width

    # -- reference path (Rocksoft model, bit serial) -------------------------

    def compute_bits_reference(self, value: int, width: int) -> int:
        """Bit-serial CRC of a ``width``-bit message ``value`` (MSB first).

        Implements the augmented ("append m zeros") semantics with the full
        Rocksoft parameter model.  Plain-remainder parameter sets are also
        accepted (they then use direct polynomial division, since the
        constructor guarantees they have no init/reflect/xorout).
        """
        params = self._parameters
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")

        if not params.augment:
            return poly_mod(value, params.full_polynomial)

        if params.reflect_in:
            if width % 8:
                raise CodingError(
                    f"reflect_in requires byte-aligned input (got width {width})"
                )
            value = self._reflect_bytes(value, width)

        register = params.init
        reg_mask = mask(params.width)
        top_bit = 1 << (params.width - 1)
        for position in range(width - 1, -1, -1):
            incoming = (value >> position) & 1
            feedback = 1 if (register & top_bit) else 0
            feedback ^= incoming
            register = (register << 1) & reg_mask
            if feedback:
                register ^= params.polynomial
        if params.reflect_out:
            register = reflect_bits(register, params.width)
        return (register ^ params.xor_out) & reg_mask

    @staticmethod
    def _reflect_bytes(value: int, width: int) -> int:
        """Reflect each byte of a byte-aligned message independently."""
        data = value.to_bytes(width // 8, "big")
        reflected = bytes(reflect_bits(byte, 8) for byte in data)
        return int.from_bytes(reflected, "big")

    # -- fast paths -----------------------------------------------------------

    def compute_bits(self, value: int, width: int) -> int:
        """CRC of a ``width``-bit message given as an integer (MSB first).

        This is the path the GD transformation uses (e.g. 255-bit chunks);
        it supports arbitrary, non byte-aligned widths.
        """
        params = self._parameters
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")

        if params.reflect_in or params.reflect_out or params.init or params.xor_out:
            return self.compute_bits_reference(value, width)

        if params.augment:
            return poly_mod(value << params.width, params.full_polynomial)
        return poly_mod(value, params.full_polynomial)

    def _build_table(self) -> List[int]:
        """Byte-at-a-time lookup table (standard augmented MSB-first CRC)."""
        params = self._parameters
        if params.width < 8:
            raise CodingError("table-driven path requires CRC width >= 8")
        table: List[int] = []
        reg_mask = mask(params.width)
        top_bit = 1 << (params.width - 1)
        for byte in range(256):
            register = byte << (params.width - 8)
            for _ in range(8):
                if register & top_bit:
                    register = ((register << 1) & reg_mask) ^ params.polynomial
                else:
                    register = (register << 1) & reg_mask
            table.append(register)
        return table

    def compute_bytes(self, data: bytes) -> int:
        """CRC of a byte string (message width = ``len(data) * 8``).

        Uses the byte-at-a-time table when the parameter set allows it,
        falling back to the generic paths otherwise.
        """
        params = self._parameters
        usable_table = (
            params.augment
            and params.width >= 8
            and not params.reflect_in
            and not params.reflect_out
            and params.xor_out == 0
        )
        if not usable_table:
            value = int.from_bytes(data, "big")
            if params.augment:
                return self.compute_bits_reference(value, len(data) * 8)
            return poly_mod(value, params.full_polynomial)

        if self._table is None:
            self._table = self._build_table()
        table = self._table
        reg_mask = mask(params.width)
        shift = params.width - 8
        register = params.init
        for byte in data:
            index = ((register >> shift) ^ byte) & 0xFF
            register = ((register << 8) & reg_mask) ^ table[index]
        return register

    def compute(
        self, message: "BitVector | bytes | int", width: Optional[int] = None
    ) -> int:
        """Polymorphic entry point accepting BitVector, bytes, or int."""
        if isinstance(message, BitVector):
            return self.compute_bits(message.value, message.width)
        if isinstance(message, (bytes, bytearray, memoryview)):
            return self.compute_bits(
                int.from_bytes(bytes(message), "big"), len(message) * 8
            )
        if isinstance(message, int):
            if width is None:
                raise CodingError("width is required when message is an int")
            return self.compute_bits(message, width)
        raise CodingError(f"unsupported message type {type(message).__name__}")

    # -- linearity helpers ------------------------------------------------------

    def unit_crcs(self, width: int) -> List[int]:
        """CRC of every single-bit message of length ``width``.

        Index ``i`` of the returned list holds ``CRC(x**i)`` — the columns of
        the parity-check matrix ``H`` in the paper's notation, and the raw
        material of Table 2b.
        """
        return [self.compute_bits(1 << position, width) for position in range(width)]

    def verify_linearity(self, samples: Sequence[int], width: int) -> bool:
        """Check ``crc(a ^ b) == crc(a) ^ crc(b)`` over the given samples.

        Only guaranteed for linear parameter sets (``is_linear``); used in
        tests and sanity checks.
        """
        for left in samples:
            for right in samples:
                combined = self.compute_bits(left ^ right, width)
                split = self.compute_bits(left, width) ^ self.compute_bits(right, width)
                if combined != split:
                    return False
        return True


def syndrome_crc(polynomial: int, width: int, name: str = "") -> CrcEngine:
    """CRC engine configured as a Hamming-syndrome computer.

    ``polynomial`` is given without the leading term (the Table 1 "Parameter
    for CRC-m" value).  The returned engine computes the plain polynomial
    remainder — exactly the syndrome of the corresponding Hamming code when
    fed ``n = 2**width - 1`` message bits.
    """
    parameters = CrcParameters(
        polynomial=polynomial,
        width=width,
        init=0,
        reflect_in=False,
        reflect_out=False,
        xor_out=0,
        augment=False,
        name=name or f"CRC-{width}/SYNDROME",
    )
    return CrcEngine(parameters)
