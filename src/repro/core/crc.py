"""Parameterised cyclic-redundancy-check (CRC) engine.

ZipLine computes Hamming syndromes with the CRC unit built into the Tofino
chip: when the CRC generator polynomial equals the Hamming generator
polynomial, the CRC of an ``n``-bit chunk *is* the Hamming syndrome
(Section 2 of the paper, Table 2).  The equivalence holds for the *plain
polynomial remainder*: ``CRC(B) = B(x) mod g(x)`` with no pre-multiplication
by ``x**m``, zero initial value, no reflection and no final XOR.

This module provides:

* :class:`CrcParameters` — the full parameter set of a CRC (polynomial,
  width, init, reflect-in/out, xor-out, augmentation), mirroring what the
  Tofino CRC extern exposes to P4 programs;
* :class:`CrcEngine` — a table-driven, byte-at-a-time fast path (the
  software analogue of the per-word XOR networks in hardware CRC engines),
  a bit-serial Rocksoft-model reference implementation, and direct GF(2)
  division for short messages;
* :func:`crc_table` / :func:`poly_mod_table` — the process-wide registry of
  256-entry lookup tables, keyed by polynomial parameters and shared between
  every engine instance (including the Tofino CRC extern model);
* :func:`syndrome_crc` — the convenience constructor used by the GD code
  (plain remainder mode).

The different code paths are cross-checked in the test suite, including
property-based tests of CRC linearity (``crc(a ^ b) == crc(a) ^ crc(b)`` in
the linear modes) and table-vs-bitwise equivalence across random
polynomials and non-byte-aligned message widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bits import BitVector, mask
from repro.exceptions import CodingError

__all__ = [
    "CrcParameters",
    "CrcEngine",
    "syndrome_crc",
    "reflect_bits",
    "polynomial_degree",
    "polynomial_str",
    "poly_mod",
    "poly_mul",
    "poly_mulmod",
    "poly_gcd",
    "is_primitive_polynomial",
    "crc_table",
    "poly_mod_table",
    "byte_remainder_function",
    "lane_tables",
    "slice_table",
    "slice_tables",
    "prefix_syndrome_table",
    "CRC32_ETHERNET",
    "CRC16_CCITT",
    "CRC8_ATM",
]


def reflect_bits(value: int, width: int) -> int:
    """Reverse the bit order of ``value`` over ``width`` bits."""
    if value >> width:
        raise CodingError(f"value {value:#x} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def polynomial_degree(polynomial: int) -> int:
    """Degree of a polynomial given in full binary form (MSB = highest term)."""
    if polynomial <= 0:
        raise CodingError(f"polynomial must be positive, got {polynomial}")
    return polynomial.bit_length() - 1


def polynomial_str(polynomial: int) -> str:
    """Human-readable form of a binary polynomial, e.g. ``x^3 + x + 1``."""
    if polynomial <= 0:
        raise CodingError(f"polynomial must be positive, got {polynomial}")
    terms: List[str] = []
    for power in range(polynomial.bit_length() - 1, -1, -1):
        if (polynomial >> power) & 1:
            if power == 0:
                terms.append("1")
            elif power == 1:
                terms.append("x")
            else:
                terms.append(f"x^{power}")
    return " + ".join(terms)


def poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial division ``dividend mod divisor``."""
    if divisor <= 0:
        raise CodingError(f"divisor must be positive, got {divisor}")
    if dividend < 0:
        raise CodingError(f"dividend must be non-negative, got {dividend}")
    divisor_degree = polynomial_degree(divisor)
    while dividend and dividend.bit_length() - 1 >= divisor_degree:
        shift = dividend.bit_length() - 1 - divisor_degree
        dividend ^= divisor << shift
    return dividend


def poly_mul(left: int, right: int) -> int:
    """Carry-less (GF(2)) polynomial multiplication."""
    if left < 0 or right < 0:
        raise CodingError("polynomials must be non-negative")
    result = 0
    while right:
        if right & 1:
            result ^= left
        left <<= 1
        right >>= 1
    return result


def poly_mulmod(left: int, right: int, modulus: int) -> int:
    """GF(2) polynomial multiplication reduced modulo ``modulus``."""
    return poly_mod(poly_mul(left, right), modulus)


def poly_gcd(left: int, right: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while right:
        left, right = right, poly_mod(left, right)
    return left


def is_primitive_polynomial(full_polynomial: int) -> bool:
    """True when ``full_polynomial`` (with leading term) is primitive over GF(2).

    A degree-``m`` polynomial is primitive iff ``x`` generates the full
    multiplicative group of GF(2^m), i.e. the order of ``x`` modulo the
    polynomial is ``2**m - 1``.  Primitive polynomials are exactly the ones
    usable as Hamming-code generators with ``n = 2**m - 1``: every non-zero
    syndrome then corresponds to a distinct single-bit error position.
    """
    degree = polynomial_degree(full_polynomial)
    if degree == 0:
        return False
    order = (1 << degree) - 1
    # x^order must be 1, and x^(order/p) != 1 for every prime divisor p.
    if _poly_pow_x(order, full_polynomial) != 1:
        return False
    for prime in _prime_factors(order):
        if _poly_pow_x(order // prime, full_polynomial) == 1:
            return False
    return True


def _poly_pow_x(exponent: int, modulus: int) -> int:
    """Compute ``x**exponent mod modulus`` by square-and-multiply."""
    result = 1
    base = 2  # the polynomial "x"
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def _prime_factors(value: int) -> List[int]:
    """Distinct prime factors of ``value`` (trial division)."""
    factors: List[int] = []
    candidate = 2
    while candidate * candidate <= value:
        if value % candidate == 0:
            factors.append(candidate)
            while value % candidate == 0:
                value //= candidate
        candidate += 1
    if value > 1:
        factors.append(value)
    return factors


# -- table-driven fast path ---------------------------------------------------
#
# A hardware CRC engine (the Tofino extern, the LiteEth/MiSoC MAC cores)
# reduces a full data word per clock through a precomputed XOR network.  The
# software equivalent is byte-at-a-time reduction through a 256-entry lookup
# table: entry ``i`` holds ``(i * x**width) mod g(x)``, so absorbing one
# message byte costs one table lookup instead of eight shift/XOR steps.
# Tables are cached process-wide, keyed by the polynomial parameters, and
# shared by every consumer (Hamming codes, the codec, the Tofino extern
# model) — building one costs 256 polynomial divisions, using it is O(1).

#: Process-wide table registry: (polynomial-without-leading-term, width) ->
#: 256-entry tuple.
_TABLE_REGISTRY: Dict[Tuple[int, int], Tuple[int, ...]] = {}

#: Bit-reversal of every byte value, used by the reflected input/output modes.
_BYTE_REFLECT: Tuple[int, ...] = tuple(
    sum(((i >> bit) & 1) << (7 - bit) for bit in range(8)) for i in range(256)
)

#: The same reversal as a ``bytes.translate`` table (whole-buffer reflection).
_BYTE_REFLECT_BYTES: bytes = bytes(_BYTE_REFLECT)

#: Lazily-imported backend registry module (importing it eagerly would be a
#: cycle: the backends import this module for the shared tables).
_BACKENDS_MODULE = None


def _backends():
    global _BACKENDS_MODULE
    if _BACKENDS_MODULE is None:
        from repro.core import backends

        _BACKENDS_MODULE = backends
    return _BACKENDS_MODULE

#: Messages shorter than this stay on the direct-division path: for a couple
#: of bytes the table set-up (``int.to_bytes`` plus loop overhead) costs more
#: than it saves.
_TABLE_MIN_BITS = 16


def crc_table(polynomial: int, width: int) -> Tuple[int, ...]:
    """The shared 256-entry lookup table for a CRC polynomial.

    ``polynomial`` is given without the implicit leading ``x**width`` term
    (the Table 1 convention).  Entry ``i`` equals
    ``(i << width) mod full_polynomial`` — the remainder contributed by a
    message byte ``i`` that still has ``width`` bits following it.  Tables
    are built once per parameter pair and shared process-wide, exactly like
    the single CRC unit that all ZipLine pipeline stages share on the ASIC.
    """
    key = (polynomial, width)
    table = _TABLE_REGISTRY.get(key)
    if table is None:
        if width <= 0:
            raise CodingError(f"CRC width must be positive, got {width}")
        if polynomial <= 0 or polynomial >> width:
            raise CodingError(
                f"polynomial {polynomial:#x} must be non-zero and fit in "
                f"{width} bits (leading term is implicit)"
            )
        full = (1 << width) | polynomial
        table = tuple(poly_mod(index << width, full) for index in range(256))
        _TABLE_REGISTRY[key] = table
    return table


def _table_remainder(value: int, table: Sequence[int], width: int) -> int:
    """GF(2) remainder of ``value`` via byte-wise table reduction.

    Equivalent to ``poly_mod(value, (1 << width) | polynomial)`` for the
    table built by :func:`crc_table`.  Handles non-byte-aligned messages for
    free: leading zero bits contribute nothing to the remainder, so the
    integer is simply serialised from its own most significant byte (a
    255-bit chunk becomes 32 bytes whose top bit is zero).
    """
    if value <= 0:
        if value == 0:
            return 0
        raise CodingError(f"value must be non-negative, got {value}")
    data = value.to_bytes((value.bit_length() + 7) // 8, "big")
    register = 0
    if width == 8:
        # The GD hot path (order-8 Hamming syndromes): the generic recurrence
        # collapses to a single lookup per byte.
        for byte in data:
            register = table[register] ^ byte
        return register
    reg_mask = mask(width)
    for byte in data:
        shifted = (register << 8) ^ byte
        register = table[shifted >> width] ^ (shifted & reg_mask)
    return register


def poly_mod_table(value: int, polynomial: int, width: int) -> int:
    """Table-accelerated GF(2) remainder modulo ``(1 << width) | polynomial``.

    Drop-in replacement for ``poly_mod(value, full_polynomial)`` on hot
    paths; the Hamming decode direction uses it to recover parity bits from
    a 247-bit basis in 31 table lookups instead of ~250 shift/XOR rounds.
    """
    return _table_remainder(value, crc_table(polynomial, width), width)


#: Widened slice-by-N tables: (polynomial, width) -> {bit distance -> 256-entry
#: tuple}.  Entry ``b`` of the distance-``D`` table is ``(b * x**D) mod g(x)``:
#: the remainder contribution of a message byte with ``D`` bits following it.
#: This generalises the classic table (distance = ``width``) and the byte
#: lanes (distance = ``8*d``) into one registry, so the batch CRC engine, the
#: Hamming lane path and the Tofino CRC extern model all share one build per
#: polynomial.  The distance-``width`` entry *is* the :func:`crc_table` tuple.
_SLICE_REGISTRY: Dict[Tuple[int, int], Dict[int, Tuple[int, ...]]] = {}


def slice_table(polynomial: int, width: int, distance: int) -> Tuple[int, ...]:
    """The shared 256-entry contribution table at a given bit ``distance``.

    ``table[b] == (b * x**distance) mod g(x)`` — what a message byte ``b``
    adds to the remainder when ``distance`` more bits follow it.  This is
    the LiteEthMACCRCEngine construction in table form: the parallel
    next-state network for a whole word is the XOR of one such table per
    byte lane.  Tables are derived incrementally (one byte-table step per
    8 bits of distance) and cached process-wide; ``distance == width``
    aliases the exact :func:`crc_table` tuple, so no consumer ever builds
    a duplicate table for the same polynomial.
    """
    if distance < 0:
        raise CodingError(f"bit distance must be non-negative, got {distance}")
    key = (polynomial, width)
    tables = _SLICE_REGISTRY.get(key)
    if tables is None:
        tables = _SLICE_REGISTRY[key] = {}
    table = tables.get(distance)
    if table is not None:
        return table
    if distance == width:
        table = crc_table(polynomial, width)
        tables[distance] = table
        return table
    byte_table = crc_table(polynomial, width)  # validates the parameters
    full = (1 << width) | polynomial
    if distance < 8:
        table = tuple(poly_mod(byte << distance, full) for byte in range(256))
        tables[distance] = table
        return table
    # Walk down the distance ladder to the nearest cached ancestor (same
    # residue class mod 8), then step back up: multiplying a residue by
    # x**8 is one round of the shared byte table.
    start = distance
    while start >= 8 and start not in tables:
        start -= 8
    if start not in tables:
        if start == width:
            tables[start] = crc_table(polynomial, width)
        else:
            tables[start] = tuple(
                poly_mod(byte << start, full) for byte in range(256)
            )
    reg_mask = mask(width)
    current = tables[start]
    while start < distance:
        start += 8
        step = tables.get(start)
        if step is None:
            step = tuple(
                byte_table[(residue << 8) >> width] ^ ((residue << 8) & reg_mask)
                for residue in current
            )
            tables[start] = step
        current = step
    return current


def slice_tables(
    polynomial: int, width: int, length: int, shift: int = 0
) -> List[Tuple[int, ...]]:
    """Per-position slice tables for ``length``-byte records.

    Position ``p`` of an ``L``-byte record sits ``8*(L-1-p)`` bits above the
    end of the message; ``shift`` adds the ``x**width`` pre-multiplication of
    augmented CRCs.  The remainder of a whole record is then the XOR of one
    table lookup per byte — the slice-by-8/16 fold widened to the full
    record, exactly how a hardware engine absorbs a whole word per clock.
    """
    if length <= 0:
        raise CodingError(f"record length must be positive, got {length}")
    return [
        slice_table(polynomial, width, 8 * (length - 1 - position) + shift)
        for position in range(length)
    ]


#: Per-byte-lane contribution tables: (polynomial, width) -> list where entry
#: ``d`` is a 256-byte translation table mapping a message byte to its
#: remainder contribution when ``d`` whole bytes follow it in the message.
#: Grown lazily as longer messages are seen; the *values* come from the
#: shared :func:`slice_table` registry (re-packed as ``bytes`` so they can
#: drive ``bytes.translate``), so both registries build each table once.
_LANE_REGISTRY: Dict[Tuple[int, int], List[bytes]] = {}


def lane_tables(polynomial: int, width: int, length: int) -> Sequence[bytes]:
    """Per-position byte→remainder translation tables for bulk reduction.

    For a CRC of ``width`` ≤ 8 bits, the remainder of every fixed-size
    record in a large buffer can be computed with C-speed primitives only:
    slice the buffer into its byte lanes (``buf[p::record_len]``), map each
    lane through the matching translation table (``bytes.translate``), and
    XOR the mapped lanes together as big integers.  Lane ``p`` of an
    ``L``-byte record uses table ``lane_tables(poly, width, L)[p]`` — entry
    ``d = L - 1 - p`` of the registry, the contribution of a byte followed
    by ``d`` more bytes:  ``table_d[b] = (b * x**(8*d)) mod g(x)``.

    This is the software shape of the per-lane XOR networks hardware CRC
    engines reduce whole words with; the GD batch fast path uses it to
    compute the syndromes of every chunk in a buffer in one pass.  Only
    widths up to 8 are supported (the remainder must fit one byte so it can
    live in a ``bytes`` lane); wider CRCs stay on
    :func:`byte_remainder_function`.
    """
    if not 1 <= width <= 8:
        raise CodingError(
            f"lane tables require a CRC width in 1..8, got {width}"
        )
    if length <= 0:
        raise CodingError(f"message length must be positive, got {length}")
    key = (polynomial, width)
    tables = _LANE_REGISTRY.get(key)
    if tables is None:
        tables = _LANE_REGISTRY[key] = []
    while len(tables) < length:
        # One byte table per 8 bits of distance, from the shared widened
        # slice registry (a width ≤ 8 remainder always fits one byte).
        tables.append(bytes(slice_table(polynomial, width, 8 * len(tables))))
    return [tables[length - 1 - position] for position in range(length)]


#: (full polynomial, body length, prefix width) -> per-prefix syndrome
#: corrections, shared by every transform/switch built on the same code.
_PREFIX_SYNDROME_REGISTRY: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}


def prefix_syndrome_table(
    full_polynomial: int, body_bits: int, prefix_bits: int
) -> Tuple[int, ...]:
    """Syndrome contribution of every prefix value sitting above the body.

    Entry ``p`` equals ``(p * x**body_bits) mod g(x)``.  Because syndromes
    are linear, ``syndrome(chunk) = syndrome(body) ^ table[prefix]`` — the
    fast paths reduce a chunk's raw bytes (prefix included) and cancel the
    prefix contribution with this one lookup.  Cached process-wide.
    """
    if prefix_bits < 0:
        raise CodingError(f"prefix width must be non-negative, got {prefix_bits}")
    key = (full_polynomial, body_bits, prefix_bits)
    table = _PREFIX_SYNDROME_REGISTRY.get(key)
    if table is None:
        table = tuple(
            poly_mod(prefix << body_bits, full_polynomial)
            for prefix in range(1 << prefix_bits)
        )
        _PREFIX_SYNDROME_REGISTRY[key] = table
    return table


def byte_remainder_function(polynomial: int, width: int):
    """A fused ``remainder(data) -> int`` closure over raw message bytes.

    The returned callable computes the plain GF(2) remainder of a
    bytes-like message (``bytes``/``bytearray``/``memoryview``) modulo
    ``(1 << width) | polynomial`` — the Hamming-syndrome mode — with the
    shared 256-entry table bound into the closure, so per-call cost is one
    tight loop with zero attribute lookups or integer re-serialisation.
    This is the entry point the fused GD fast path (transform batch split,
    switch models) reduces chunks through; equivalence with
    :func:`poly_mod_table` over the serialised integer is property-tested.

    Leading zero bytes contribute nothing to a remainder, so feeding whole
    byte-aligned buffers of non-aligned messages (a 255-bit chunk in 32
    bytes) is exact.
    """
    table = crc_table(polynomial, width)
    if width == 8:
        # The GD hot path (order-8 syndromes): one lookup + XOR per byte.
        def remainder8(data) -> int:
            register = 0
            for byte in data:
                register = table[register] ^ byte
            return register

        return remainder8

    reg_mask = mask(width)

    def remainder(data) -> int:
        register = 0
        for byte in data:
            shifted = (register << 8) ^ byte
            register = table[shifted >> width] ^ (shifted & reg_mask)
        return register

    return remainder


@dataclass(frozen=True)
class CrcParameters:
    """Complete description of a CRC variant.

    Attributes
    ----------
    polynomial:
        Generator polynomial *without* the implicit leading ``x**width``
        term, as conventionally specified (e.g. ``0x04C11DB7`` for CRC-32).
        This matches the "Parameter for CRC-m" column of Table 1 in the
        paper and the value programmed into the Tofino CRC extern.
    width:
        CRC width ``m`` in bits.
    init:
        Initial shift-register value.
    reflect_in / reflect_out:
        Input-byte / output reflection, as in the Rocksoft model.
    xor_out:
        Final XOR applied to the register.
    augment:
        When ``True`` the message is multiplied by ``x**width`` before the
        division (the classic "append m zero bits" CRC).  When ``False`` the
        plain polynomial remainder is computed — the mode that makes the CRC
        equal to a Hamming syndrome (Table 2 of the paper).
    """

    polynomial: int
    width: int
    init: int = 0
    reflect_in: bool = False
    reflect_out: bool = False
    xor_out: int = 0
    augment: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CodingError(f"CRC width must be positive, got {self.width}")
        if self.polynomial >> self.width:
            raise CodingError(
                f"polynomial {self.polynomial:#x} does not fit in "
                f"{self.width} bits (leading term is implicit)"
            )
        if self.polynomial == 0:
            raise CodingError("polynomial must be non-zero")
        if self.init >> self.width:
            raise CodingError(f"init {self.init:#x} does not fit in {self.width} bits")
        if self.xor_out >> self.width:
            raise CodingError(
                f"xor_out {self.xor_out:#x} does not fit in {self.width} bits"
            )
        if not self.augment and (
            self.init or self.xor_out or self.reflect_in or self.reflect_out
        ):
            raise CodingError(
                "plain-remainder (non-augmented) CRCs only support "
                "init=0, xor_out=0 and no reflection"
            )

    @property
    def full_polynomial(self) -> int:
        """Polynomial including the implicit leading ``x**width`` term."""
        return (1 << self.width) | self.polynomial

    @property
    def is_linear(self) -> bool:
        """True when ``crc(a ^ b) == crc(a) ^ crc(b)`` holds for this variant."""
        return self.init == 0 and self.xor_out == 0

    def describe(self) -> str:
        """One-line human-readable description of the parameter set."""
        label = self.name or f"CRC-{self.width}"
        return (
            f"{label}: poly={polynomial_str(self.full_polynomial)} "
            f"(0x{self.polynomial:X}), init=0x{self.init:X}, "
            f"refin={self.reflect_in}, refout={self.reflect_out}, "
            f"xorout=0x{self.xor_out:X}, augment={self.augment}"
        )


# Well-known parameter sets, used in tests and by the Ethernet FCS model.
CRC32_ETHERNET = CrcParameters(
    polynomial=0x04C11DB7,
    width=32,
    init=0xFFFFFFFF,
    reflect_in=True,
    reflect_out=True,
    xor_out=0xFFFFFFFF,
    augment=True,
    name="CRC-32/ETHERNET",
)

CRC16_CCITT = CrcParameters(
    polynomial=0x1021,
    width=16,
    init=0xFFFF,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x0000,
    augment=True,
    name="CRC-16/CCITT-FALSE",
)

CRC8_ATM = CrcParameters(
    polynomial=0x07,
    width=8,
    init=0x00,
    reflect_in=False,
    reflect_out=False,
    xor_out=0x00,
    augment=True,
    name="CRC-8/ATM",
)


class CrcEngine:
    """CRC computation engine for arbitrary-width messages.

    Three code paths, cross-validated by the test suite:

    * the **table fast path** (:meth:`compute_bits_table`) reduces the
      message byte-at-a-time through the shared 256-entry table registry —
      it handles arbitrary, non byte-aligned widths (255/511-bit chunks) and
      the full Rocksoft parameter model, and is what :meth:`compute_bits`
      dispatches to for anything longer than a couple of bytes;
    * short messages use direct GF(2) polynomial division over Python
      integers, where table set-up overhead would dominate;
    * the bit-serial Rocksoft reference (:meth:`compute_bits_reference`)
      exists purely for cross-validation.
    """

    def __init__(self, parameters: CrcParameters):
        self._parameters = parameters
        self._table: Optional[Tuple[int, ...]] = None
        self._batch_states: Dict[int, Tuple[int, List[Tuple[int, ...]], int, int]] = {}

    @property
    def parameters(self) -> CrcParameters:
        """The CRC parameter set this engine was built with."""
        return self._parameters

    @property
    def width(self) -> int:
        """CRC width in bits."""
        return self._parameters.width

    # -- reference path (Rocksoft model, bit serial) -------------------------

    def compute_bits_reference(self, value: int, width: int) -> int:
        """Bit-serial CRC of a ``width``-bit message ``value`` (MSB first).

        Implements the augmented ("append m zeros") semantics with the full
        Rocksoft parameter model.  Plain-remainder parameter sets are also
        accepted (they then use direct polynomial division, since the
        constructor guarantees they have no init/reflect/xorout).
        """
        params = self._parameters
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")

        if not params.augment:
            return poly_mod(value, params.full_polynomial)

        if params.reflect_in:
            if width % 8:
                raise CodingError(
                    f"reflect_in requires byte-aligned input (got width {width})"
                )
            value = self._reflect_bytes(value, width)

        register = params.init
        reg_mask = mask(params.width)
        top_bit = 1 << (params.width - 1)
        for position in range(width - 1, -1, -1):
            incoming = (value >> position) & 1
            feedback = 1 if (register & top_bit) else 0
            feedback ^= incoming
            register = (register << 1) & reg_mask
            if feedback:
                register ^= params.polynomial
        if params.reflect_out:
            register = reflect_bits(register, params.width)
        return (register ^ params.xor_out) & reg_mask

    @staticmethod
    def _reflect_bytes(value: int, width: int) -> int:
        """Reflect each byte of a byte-aligned message independently."""
        data = value.to_bytes(width // 8, "big")
        reflected = bytes(_BYTE_REFLECT[byte] for byte in data)
        return int.from_bytes(reflected, "big")

    # -- fast paths -----------------------------------------------------------

    @property
    def lookup_table(self) -> Tuple[int, ...]:
        """The shared 256-entry table for this engine's polynomial.

        Comes from the process-wide registry, so every engine (and the
        Tofino CRC extern model) built with the same polynomial parameters
        sees the exact same tuple.
        """
        if self._table is None:
            self._table = crc_table(self._parameters.polynomial, self._parameters.width)
        return self._table

    def compute_bits(self, value: int, width: int) -> int:
        """CRC of a ``width``-bit message given as an integer (MSB first).

        This is the path the GD transformation uses (e.g. 255-bit chunks);
        it supports arbitrary, non byte-aligned widths.  Messages of
        ``_TABLE_MIN_BITS`` bits or more go through the byte-wise lookup
        table; shorter ones use direct division or the bit-serial reference.
        """
        params = self._parameters
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")

        if width >= _TABLE_MIN_BITS and not (params.reflect_in and width % 8):
            return self.compute_bits_table(value, width)

        if params.reflect_in or params.reflect_out or params.init or params.xor_out:
            return self.compute_bits_reference(value, width)

        if params.augment:
            return poly_mod(value << params.width, params.full_polynomial)
        return poly_mod(value, params.full_polynomial)

    def compute_bits_table(self, value: int, width: int) -> int:
        """Table-driven CRC of a ``width``-bit message (full parameter model).

        Bit-identical to :meth:`compute_bits_reference` for every parameter
        set.  The Rocksoft register model reduces to one plain polynomial
        remainder: running the LFSR with initial register ``I`` over a
        ``W``-bit message ``M`` computes ``(M * x**m  ^  I * x**W) mod g``,
        so the init term is folded into the message before a single
        table-driven division, and reflection/xorout are cheap pre/post
        steps.  Non-byte-aligned widths need no special casing because
        leading zero bits do not change a remainder.
        """
        params = self._parameters
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")
        if params.reflect_in:
            if width % 8:
                raise CodingError(
                    f"reflect_in requires byte-aligned input (got width {width})"
                )
            value = self._reflect_bytes(value, width)
        if params.augment:
            value = (value << params.width) ^ (params.init << width)
        register = _table_remainder(value, self.lookup_table, params.width)
        if params.reflect_out:
            register = reflect_bits(register, params.width)
        return register ^ params.xor_out

    def compute_bytes(self, data: bytes) -> int:
        """CRC of a byte string (message width = ``len(data) * 8``).

        Always table-driven: byte strings are byte aligned by construction,
        so every parameter variant (including the reflected Ethernet FCS)
        takes the fast path.
        """
        if not isinstance(data, bytes):
            data = bytes(data)
        return self.compute_bits_table(int.from_bytes(data, "big"), len(data) * 8)

    # -- batch path -----------------------------------------------------------

    def _batch_state(self, record_bits: int):
        """Validated per-record-width batch state (tables, init term, bounds)."""
        state = self._batch_states.get(record_bits)
        if state is None:
            params = self._parameters
            if record_bits <= 0:
                raise CodingError(
                    f"record width must be positive, got {record_bits}"
                )
            if params.reflect_in and record_bits % 8:
                raise CodingError(
                    f"reflect_in requires byte-aligned input (got width {record_bits})"
                )
            record_bytes = (record_bits + 7) // 8
            tables = slice_tables(
                params.polynomial,
                params.width,
                record_bytes,
                shift=params.width if params.augment else 0,
            )
            init_term = (
                poly_mod(params.init << record_bits, params.full_polynomial)
                if params.init
                else 0
            )
            extra = record_bytes * 8 - record_bits
            head_limit = (1 << (8 - extra)) if extra else 256
            state = (record_bytes, tables, init_term, head_limit)
            self._batch_states[record_bits] = state
        return state

    def compute_batch(self, data, record_bits: int, backend=None) -> List[int]:
        """CRC of every consecutive ``record_bits``-wide record in ``data``.

        ``data`` is a contiguous bytes-like buffer of fixed-size records,
        each occupying ``(record_bits + 7) // 8`` bytes with the value in
        the low ``record_bits`` bits (big-endian, leading pad bits zero) —
        the layout of a chunk buffer or a sliced frame batch.  Returns one
        CRC per record, bit-identical to ``compute_bits(value, record_bits)``
        for every record, for every parameter set (augmented, reflected,
        init/xorout, non-byte-aligned widths).

        Dispatch goes through the codec backend registry: an accelerated
        backend that reports :meth:`~repro.core.backends.CodecBackend.
        supports_crc_batch` folds the whole buffer with table-gather XORs
        over a single ``frombuffer`` view; otherwise the pure slice-by-N
        fold of :meth:`compute_batch_pure` runs.  An explicitly named
        ``backend`` is honoured for any batch size; automatic selection
        requires ``MIN_BATCH_CHUNKS`` records, like the transform paths.
        """
        record_bytes, _tables, _init_term, _head_limit = self._batch_state(
            record_bits
        )
        total = len(data)
        if total % record_bytes:
            raise CodingError(
                f"buffer of {total} bytes is not a whole number of "
                f"{record_bytes}-byte records"
            )
        count = total // record_bytes
        if count == 0:
            return []
        registry = _backends()
        resolved = registry.resolve_backend(backend)
        if (
            resolved.accelerated
            and (backend is not None or count >= registry.MIN_BATCH_CHUNKS)
            and resolved.supports_crc_batch(self._parameters)
        ):
            return resolved.crc_batch(self, data, record_bits)
        return self.compute_batch_pure(data, record_bits)

    def compute_batch_pure(self, data, record_bits: int) -> List[int]:
        """Pure-Python batch CRC: the slice-by-N fold, one table per lane.

        Widens the classic slice-by-8/16 folding to the whole record: byte
        lane ``p`` is absorbed through the shared
        :func:`slice_table` at its bit distance, so each record costs one
        XOR per byte with no shifting register — the software shape of the
        ``LiteEthMACCRCEngine`` parallel next-state network.
        """
        params = self._parameters
        record_bytes, tables, init_term, head_limit = self._batch_state(record_bits)
        buf = bytes(data)
        total = len(buf)
        if total % record_bytes:
            raise CodingError(
                f"buffer of {total} bytes is not a whole number of "
                f"{record_bytes}-byte records"
            )
        if params.reflect_in:
            buf = buf.translate(_BYTE_REFLECT_BYTES)
        reflect_out = params.reflect_out
        xor_out = params.xor_out
        width = params.width
        results: List[int] = []
        append = results.append
        offset = 0
        for index in range(total // record_bytes):
            record = buf[offset : offset + record_bytes]
            if record[0] >= head_limit:
                raise CodingError(
                    f"record {index} does not fit in {record_bits} bits"
                )
            register = init_term
            for table, byte in zip(tables, record):
                register ^= table[byte]
            if reflect_out:
                register = reflect_bits(register, width)
            append(register ^ xor_out)
            offset += record_bytes
        return results

    def compute(
        self, message: "BitVector | bytes | int", width: Optional[int] = None
    ) -> int:
        """Polymorphic entry point accepting BitVector, bytes, or int."""
        if isinstance(message, BitVector):
            return self.compute_bits(message.value, message.width)
        if isinstance(message, (bytes, bytearray, memoryview)):
            return self.compute_bits(
                int.from_bytes(bytes(message), "big"), len(message) * 8
            )
        if isinstance(message, int):
            if width is None:
                raise CodingError("width is required when message is an int")
            return self.compute_bits(message, width)
        raise CodingError(f"unsupported message type {type(message).__name__}")

    # -- linearity helpers ------------------------------------------------------

    def unit_crcs(self, width: int) -> List[int]:
        """CRC of every single-bit message of length ``width``.

        Index ``i`` of the returned list holds ``CRC(x**i)`` — the columns of
        the parity-check matrix ``H`` in the paper's notation, and the raw
        material of Table 2b.
        """
        return [self.compute_bits(1 << position, width) for position in range(width)]

    def verify_linearity(self, samples: Sequence[int], width: int) -> bool:
        """Check ``crc(a ^ b) == crc(a) ^ crc(b)`` over the given samples.

        Only guaranteed for linear parameter sets (``is_linear``); used in
        tests and sanity checks.
        """
        for left in samples:
            for right in samples:
                combined = self.compute_bits(left ^ right, width)
                split = self.compute_bits(left, width) ^ self.compute_bits(right, width)
                if combined != split:
                    return False
        return True


def syndrome_crc(polynomial: int, width: int, name: str = "") -> CrcEngine:
    """CRC engine configured as a Hamming-syndrome computer.

    ``polynomial`` is given without the leading term (the Table 1 "Parameter
    for CRC-m" value).  The returned engine computes the plain polynomial
    remainder — exactly the syndrome of the corresponding Hamming code when
    fed ``n = 2**width - 1`` message bits.
    """
    parameters = CrcParameters(
        polynomial=polynomial,
        width=width,
        init=0,
        reflect_in=False,
        reflect_out=False,
        xor_out=0,
        augment=False,
        name=name or f"CRC-{width}/SYNDROME",
    )
    return CrcEngine(parameters)
