"""GD decoder: reconstructs original chunks from type-2/type-3 records.

The decoder inverts :class:`~repro.core.encoder.GDEncoder`.  Its dictionary
maps identifiers back to (prefix, basis) pairs; in the pure-software codec
the decoder keeps its dictionary synchronised by learning from the type-2
records it receives (the same deterministic insertion order the encoder
used), while in the switch deployment the control plane installs the reverse
mapping explicitly before the forward mapping is enabled (Section 5 of the
paper), which the :mod:`repro.controlplane` package models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro import obs as _obs
from repro.core.backends import MIN_BATCH_CHUNKS
from repro.core.dictionary import BasisDictionary
from repro.core.records import (
    CompressedRecord,
    GDRecord,
    RawRecord,
    RecordType,
    UncompressedRecord,
)
from repro.core.transform import GDTransform
from repro.exceptions import CodingError, DictionaryError

__all__ = ["DecoderStats", "GDDecoder"]


@dataclass
class DecoderStats:
    """Counters describing what the decoder has processed."""

    records: int = 0
    raw_records: int = 0
    uncompressed_records: int = 0
    compressed_records: int = 0
    output_bits: int = 0
    unknown_identifiers: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "records": self.records,
            "raw_records": self.raw_records,
            "uncompressed_records": self.uncompressed_records,
            "compressed_records": self.compressed_records,
            "output_bits": self.output_bits,
            "unknown_identifiers": self.unknown_identifiers,
        }


class GDDecoder:
    """Decode GD records back into the original chunks.

    Parameters
    ----------
    transform:
        Must be configured identically to the encoder's transform.
    dictionary:
        The identifier → basis mapping.  May be shared with an encoder (the
        ideal zero-latency model) or kept separate and fed by learning /
        control-plane installs.
    learn_from_uncompressed:
        When ``True`` (default), every type-2 record inserts its basis into
        the dictionary, mirroring the deterministic insertion the encoder
        performs in dynamic mode so that both sides assign the same
        identifiers without any out-of-band channel.
    """

    def __init__(
        self,
        transform: GDTransform,
        dictionary: Optional[BasisDictionary] = None,
        learn_from_uncompressed: bool = True,
    ):
        self._transform = transform
        self._dictionary = dictionary
        self._learn = learn_from_uncompressed
        self.stats = DecoderStats()

    # -- accessors ---------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transformation in use."""
        return self._transform

    @property
    def dictionary(self) -> Optional[BasisDictionary]:
        """The identifier → basis dictionary (``None`` when decoding type 2 only)."""
        return self._dictionary

    # -- decoding ------------------------------------------------------------

    def decode_record(self, record: GDRecord) -> int:
        """Decode one record into the original chunk value."""
        self.stats.records += 1
        if isinstance(record, RawRecord):
            self.stats.raw_records += 1
            self.stats.output_bits += record.chunk_bits
            return record.chunk
        if isinstance(record, UncompressedRecord):
            return self._decode_uncompressed(record)
        if isinstance(record, CompressedRecord):
            return self._decode_compressed(record)
        raise CodingError(f"unsupported record type {type(record).__name__}")

    def decode_record_to_bytes(self, record: GDRecord) -> bytes:
        """Decode one record and serialise the chunk to bytes."""
        chunk = self.decode_record(record)
        return self._transform.chunk_to_bytes(chunk)

    def decode_stream(self, records: Iterable[GDRecord]) -> Iterator[int]:
        """Lazily decode an iterable of records."""
        for record in records:
            yield self.decode_record(record)

    def decode_all(self, records: Iterable[GDRecord]) -> List[int]:
        """Eagerly decode an iterable of records."""
        return self.decode_batch(records)

    def decode_to_bytes(self, records: Iterable[GDRecord]) -> bytes:
        """Decode an iterable of records and concatenate the chunk bytes."""
        return self.decode_batch_to_bytes(records)

    def decode_batch(self, records: Iterable[GDRecord]) -> List[int]:
        """Decode many records with the per-record accounting amortized.

        Produces exactly the chunks (and final statistics) of repeated
        :meth:`decode_record` calls, but runs in two fused passes: the
        first resolves every record to ``(prefix, basis, deviation)`` in
        order (dictionary learning and identifier resolution are strictly
        sequential — a type-3 record may reference a basis introduced by
        an earlier type-2 record in the same batch), the second rebuilds
        all chunks at once, recovering the parity bits of the whole batch
        through the bulk lane reduction — routed through the transform's
        codec backend, which folds large batches as ndarray gathers when
        accelerated — instead of one CRC pass per record.
        """
        chunks, slots, prefixes, bases, deviations = self._resolve_batch(records)
        self._join_resolved(chunks, slots, prefixes, bases, deviations)
        return chunks

    def _resolve_batch(self, records: Iterable[GDRecord]):
        """Pass 1: resolve records to field columns, in strict order.

        Returns ``(chunks, slots, prefixes, bases, deviations)`` where
        ``chunks`` already holds raw-record values (coded slots are zero
        placeholders listed in ``slots``).  All dictionary learning,
        tracing and statistics happen here, so every join strategy over
        the columns observes identical state.
        """
        stats = self.stats
        transform = self._transform
        dictionary = self._dictionary
        learn = self._learn
        chunk_bits = transform.chunk_bits
        prefix_width = transform.prefix_bits
        basis_width = transform.basis_bits
        deviation_width = transform.deviation_bits
        # Hoisted tracing guard: one attribute lookup per batch when disabled.
        tracer = _obs.TRACER
        traced = tracer.enabled

        chunks: List[int] = []
        append = chunks.append
        slots: List[int] = []
        prefixes: List[int] = []
        bases: List[int] = []
        deviations: List[int] = []
        count = 0
        raw = 0
        raw_bits = 0
        for record in records:
            count += 1
            if isinstance(record, UncompressedRecord):
                stats.uncompressed_records += 1
                if (
                    record.prefix_bits != prefix_width
                    or record.basis_bits != basis_width
                    or record.deviation_bits != deviation_width
                ):
                    self._check_widths(
                        record.prefix_bits, record.basis_bits, record.deviation_bits
                    )
                basis = record.basis
                if learn and dictionary is not None:
                    if traced:
                        learned_id, evicted = dictionary.insert(basis)
                        learn_args = {
                            "outcome": "uncompressed",
                            "learned_identifier": learned_id,
                        }
                        if evicted is not None:
                            learn_args["evicted_basis"] = evicted
                        tracer.instant("gd.decode", "gd-decoder", args=learn_args)
                    else:
                        dictionary.insert(basis)
                elif traced:
                    tracer.instant(
                        "gd.decode", "gd-decoder", args={"outcome": "uncompressed"}
                    )
                stats.output_bits += chunk_bits
                slots.append(len(chunks))
                prefixes.append(record.prefix)
                bases.append(basis)
                deviations.append(record.deviation)
                append(0)
            elif isinstance(record, CompressedRecord):
                stats.compressed_records += 1
                if dictionary is None:
                    raise DictionaryError(
                        "cannot decode a compressed record without a dictionary"
                    )
                basis = dictionary.reverse_lookup(record.identifier)
                if basis is None:
                    stats.unknown_identifiers += 1
                    if traced:
                        tracer.instant(
                            "gd.decode",
                            "gd-decoder",
                            args={
                                "outcome": "unknown",
                                "identifier": record.identifier,
                            },
                        )
                    raise DictionaryError(
                        f"identifier {record.identifier} is not mapped to any basis"
                    )
                if traced:
                    tracer.instant(
                        "gd.decode",
                        "gd-decoder",
                        args={"outcome": "hit", "identifier": record.identifier},
                    )
                if learn:
                    dictionary.touch(basis)
                if (
                    record.prefix_bits != prefix_width
                    or record.deviation_bits != deviation_width
                ):
                    self._check_widths(record.prefix_bits, None, record.deviation_bits)
                if not isinstance(basis, int) or basis < 0 or basis >> basis_width:
                    raise CodingError(
                        f"basis {basis!r} does not fit in {basis_width} bits"
                    )
                stats.output_bits += chunk_bits
                slots.append(len(chunks))
                prefixes.append(record.prefix)
                bases.append(basis)
                deviations.append(record.deviation)
                append(0)
            elif isinstance(record, RawRecord):
                raw += 1
                raw_bits += record.chunk_bits
                append(record.chunk)
            else:
                stats.records += count
                stats.raw_records += raw
                stats.output_bits += raw_bits
                raise CodingError(
                    f"unsupported record type {type(record).__name__}"
                )
        stats.records += count
        stats.raw_records += raw
        stats.output_bits += raw_bits
        return chunks, slots, prefixes, bases, deviations

    def _join_resolved(
        self,
        chunks: List[int],
        slots: List[int],
        prefixes: List[int],
        bases: List[int],
        deviations: List[int],
    ) -> None:
        """Pass 2: rebuild every coded chunk from the resolved columns."""
        if not slots:
            return
        transform = self._transform
        code = transform.code
        if transform.fast:
            parities = code.parities_of_bases(
                bases, backend=transform.backend_impl
            )
            masks = code.error_masks
            m = code.m
            n = code.n
            for position, slot in enumerate(slots):
                codeword = (bases[position] << m) | parities[position]
                chunks[slot] = (prefixes[position] << n) | (
                    codeword ^ masks[deviations[position]]
                )
        else:
            join = transform.join_fields_fast  # reference path when fast=False
            for position, slot in enumerate(slots):
                chunks[slot] = join(
                    prefixes[position], bases[position], deviations[position]
                )

    def decode_batch_to_bytes(self, records: Iterable[GDRecord]) -> bytes:
        """Decode a record batch and concatenate the serialised chunks.

        Statistics, dictionary learning and output bytes equal
        :meth:`decode_batch` followed by per-chunk serialisation, but when
        an accelerated codec backend supports the configuration the coded
        chunks of the batch are rebuilt and serialised in one vectorized
        pass (bulk parity fold, deviation scatter, prefix embed, single
        ``tobytes``) instead of materialising per-chunk integers.
        """
        transform = self._transform
        chunks, slots, prefixes, bases, deviations = self._resolve_batch(records)
        aligned = transform.chunk_bits % 8 == 0
        chunk_bytes = transform.chunk_bytes
        backend = transform.backend_impl
        if (
            aligned
            and transform.fast
            and backend.accelerated
            and len(slots) >= MIN_BATCH_CHUNKS
            and backend.supports_join(transform)
        ):
            joined = backend.join_batch_to_bytes(
                transform, prefixes, bases, deviations
            )
            if len(slots) == len(chunks):
                return joined
            pieces = [chunk.to_bytes(chunk_bytes, "big") for chunk in chunks]
            for position, slot in enumerate(slots):
                offset = position * chunk_bytes
                pieces[slot] = joined[offset : offset + chunk_bytes]
            return b"".join(pieces)
        self._join_resolved(chunks, slots, prefixes, bases, deviations)
        if aligned:
            return b"".join(chunk.to_bytes(chunk_bytes, "big") for chunk in chunks)
        return b"".join(transform.chunk_to_bytes(chunk) for chunk in chunks)

    def decode_columns_to_bytes(
        self,
        tags: "bytes | bytearray",
        prefixes: List[int],
        keys: List[int],
        deviations: List[int],
    ) -> bytes:
        """Decode already-parsed record columns into the original bytes.

        ``tags[i]`` is the record type (2 or 3) of position ``i``;
        ``keys[i]`` carries the basis for type-2 positions and the
        identifier for type-3 positions.  Statistics, dictionary learning
        and exception behaviour match feeding the equivalent record objects
        through :meth:`decode_batch_to_bytes`; the resolve loop stays
        strictly sequential (a type-3 record may reference a basis a
        type-2 record introduced earlier in the same batch) while the join
        runs through the vectorized backend when eligible.  Callers
        guarantee the fields already fit the transform's widths (the
        container parser masks them), so only dictionary-supplied bases
        are re-checked.
        """
        stats = self.stats
        transform = self._transform
        dictionary = self._dictionary
        learn = self._learn
        chunk_bits = transform.chunk_bits
        basis_width = transform.basis_bits
        count = len(tags)
        bases: List[int] = [0] * count
        for position in range(count):
            if tags[position] == 2:
                stats.uncompressed_records += 1
                basis = keys[position]
                if learn and dictionary is not None:
                    dictionary.insert(basis)
                stats.output_bits += chunk_bits
                bases[position] = basis
            else:
                stats.compressed_records += 1
                if dictionary is None:
                    raise DictionaryError(
                        "cannot decode a compressed record without a dictionary"
                    )
                basis = dictionary.reverse_lookup(keys[position])
                if basis is None:
                    stats.unknown_identifiers += 1
                    raise DictionaryError(
                        f"identifier {keys[position]} is not mapped to any basis"
                    )
                if learn:
                    dictionary.touch(basis)
                if not isinstance(basis, int) or basis < 0 or basis >> basis_width:
                    raise CodingError(
                        f"basis {basis!r} does not fit in {basis_width} bits"
                    )
                stats.output_bits += chunk_bits
                bases[position] = basis
        stats.records += count
        if count == 0:
            return b""
        aligned = chunk_bits % 8 == 0
        chunk_bytes = transform.chunk_bytes
        backend = transform.backend_impl
        if (
            aligned
            and transform.fast
            and backend.accelerated
            and count >= MIN_BATCH_CHUNKS
            and backend.supports_join(transform)
        ):
            return backend.join_batch_to_bytes(transform, prefixes, bases, deviations)
        chunks: List[int] = [0] * count
        self._join_resolved(chunks, list(range(count)), prefixes, bases, deviations)
        if aligned:
            return b"".join(chunk.to_bytes(chunk_bytes, "big") for chunk in chunks)
        return b"".join(transform.chunk_to_bytes(chunk) for chunk in chunks)

    # -- internals ------------------------------------------------------------

    def _decode_uncompressed(self, record: UncompressedRecord) -> int:
        self.stats.uncompressed_records += 1
        self._check_widths(record.prefix_bits, record.basis_bits, record.deviation_bits)
        if self._learn and self._dictionary is not None:
            self._dictionary.insert(record.dedup_key)
        # Record fields are width-validated at construction and the widths
        # match the transform (checked above), so the fused join is safe.
        chunk = self._transform.join_fields_fast(
            record.prefix, record.basis, record.deviation
        )
        self.stats.output_bits += self._transform.chunk_bits
        return chunk

    def _decode_compressed(self, record: CompressedRecord) -> int:
        self.stats.compressed_records += 1
        if self._dictionary is None:
            raise DictionaryError(
                "cannot decode a compressed record without a dictionary"
            )
        basis = self._dictionary.reverse_lookup(record.identifier)
        if basis is None:
            self.stats.unknown_identifiers += 1
            raise DictionaryError(
                f"identifier {record.identifier} is not mapped to any basis"
            )
        if self._learn:
            # Keep the decoder's recency order aligned with the encoder's so
            # both sides evict the same entries under dictionary pressure.
            self._dictionary.touch(basis)
        self._check_widths(record.prefix_bits, None, record.deviation_bits)
        # The basis came from the dictionary, which external installs can
        # feed — keep the width guard the checked join used to provide.
        if not isinstance(basis, int) or basis < 0 or basis >> self._transform.basis_bits:
            raise CodingError(
                f"basis {basis!r} does not fit in {self._transform.basis_bits} bits"
            )
        chunk = self._transform.join_fields_fast(record.prefix, basis, record.deviation)
        self.stats.output_bits += self._transform.chunk_bits
        return chunk

    def _check_widths(
        self,
        prefix_bits: int,
        basis_bits: Optional[int],
        deviation_bits: int,
    ) -> None:
        if prefix_bits != self._transform.prefix_bits:
            raise CodingError(
                f"record prefix width {prefix_bits} does not match transform "
                f"prefix width {self._transform.prefix_bits}"
            )
        if basis_bits is not None and basis_bits != self._transform.basis_bits:
            raise CodingError(
                f"record basis width {basis_bits} does not match transform "
                f"basis width {self._transform.basis_bits}"
            )
        if deviation_bits != self._transform.deviation_bits:
            raise CodingError(
                f"record deviation width {deviation_bits} does not match transform "
                f"deviation width {self._transform.deviation_bits}"
            )

    def reset_stats(self) -> None:
        """Zero the accounting counters without touching the dictionary."""
        self.stats = DecoderStats()

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Canonical, JSON-serialisable snapshot of the decoder's state.

        The counterpart of :meth:`GDEncoder.snapshot_state`: the dictionary
        (with its recency order and allocator) plus the record accounting.
        Configuration (transform, learning flag) is not captured; restore
        requires an identically configured decoder.
        """
        stats = self.stats
        state: Dict[str, object] = {
            "stats": {
                "records": stats.records,
                "raw_records": stats.raw_records,
                "uncompressed_records": stats.uncompressed_records,
                "compressed_records": stats.compressed_records,
                "output_bits": stats.output_bits,
                "unknown_identifiers": stats.unknown_identifiers,
            },
        }
        if self._dictionary is not None:
            state["dictionary"] = self._dictionary.snapshot_state()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a snapshot taken by an identically configured decoder.

        This is the crash-recovery entry point: a decoder restarted
        mid-trace restores the identifier → basis mapping (and its recency
        order, so future evictions stay in lock-step with the encoder)
        instead of emitting ``unknown_identifier`` for every type-3 record
        until the control plane happens to reinstall each mapping.
        """
        if "dictionary" in state:
            if self._dictionary is None:
                raise DictionaryError(
                    "snapshot carries a dictionary but this decoder has none"
                )
            self._dictionary.restore_state(state["dictionary"])
        stats = state.get("stats", {})
        self.stats = DecoderStats(
            records=int(stats.get("records", 0)),
            raw_records=int(stats.get("raw_records", 0)),
            uncompressed_records=int(stats.get("uncompressed_records", 0)),
            compressed_records=int(stats.get("compressed_records", 0)),
            output_bits=int(stats.get("output_bits", 0)),
            unknown_identifiers=int(stats.get("unknown_identifiers", 0)),
        )
