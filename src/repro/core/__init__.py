"""Core of the reproduction: generalized deduplication built on Hamming/CRC.

This subpackage is the paper's primary contribution in library form:

* :mod:`repro.core.bits` — bit-vector utilities;
* :mod:`repro.core.crc` — the parameterised CRC engine (the software twin of
  the Tofino CRC extern);
* :mod:`repro.core.polynomials` — Table 1 of the paper as a registry;
* :mod:`repro.core.hamming` — Hamming codes driven by CRC arithmetic;
* :mod:`repro.core.transform` — the chunk ⇄ (prefix, basis, deviation) split;
* :mod:`repro.core.dictionary` — the bounded basis ↔ identifier mapping;
* :mod:`repro.core.encoder` / :mod:`repro.core.decoder` — record-level GD;
* :mod:`repro.core.codec` — the one-call byte-stream compressor;
* :mod:`repro.core.engine` — the streaming :class:`Compressor` protocol
  unifying the GD codec and every baseline (see also :mod:`repro.registry`).
"""

from repro.core.bits import BitVector
from repro.core.codec import CompressionResult, GDCodec
from repro.core.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_ETHERNET,
    CrcEngine,
    CrcParameters,
    crc_table,
    poly_mod_table,
    syndrome_crc,
)
from repro.core.engine import (
    Compressor,
    DedupStreamCompressor,
    GDStreamCompressor,
    GzipStreamCompressor,
    NullStreamCompressor,
    compress_bytes,
    compress_file,
    decompress_bytes,
    decompress_file,
)
from repro.core.decoder import DecoderStats, GDDecoder
from repro.core.dictionary import BasisDictionary, DictionaryStats, EvictionPolicy
from repro.core.encoder import EncoderMode, EncoderStats, GDEncoder
from repro.core.hamming import HammingCode, SyndromeTable
from repro.core.polynomials import (
    TABLE_1,
    HammingPolynomial,
    default_polynomial,
    polynomial_for_code,
    polynomial_for_order,
    supported_orders,
)
from repro.core.records import (
    CompressedRecord,
    GDRecord,
    RawRecord,
    RecordType,
    UncompressedRecord,
)
from repro.core.transform import GDParts, GDTransform

__all__ = [
    "BitVector",
    "CompressionResult",
    "GDCodec",
    "CRC8_ATM",
    "CRC16_CCITT",
    "CRC32_ETHERNET",
    "CrcEngine",
    "CrcParameters",
    "crc_table",
    "poly_mod_table",
    "syndrome_crc",
    "Compressor",
    "DedupStreamCompressor",
    "GDStreamCompressor",
    "GzipStreamCompressor",
    "NullStreamCompressor",
    "compress_bytes",
    "compress_file",
    "decompress_bytes",
    "decompress_file",
    "DecoderStats",
    "GDDecoder",
    "BasisDictionary",
    "DictionaryStats",
    "EvictionPolicy",
    "EncoderMode",
    "EncoderStats",
    "GDEncoder",
    "HammingCode",
    "SyndromeTable",
    "TABLE_1",
    "HammingPolynomial",
    "default_polynomial",
    "polynomial_for_code",
    "polynomial_for_order",
    "supported_orders",
    "CompressedRecord",
    "GDRecord",
    "RawRecord",
    "RecordType",
    "UncompressedRecord",
    "GDParts",
    "GDTransform",
]
