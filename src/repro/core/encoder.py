"""GD encoder: turns a stream of fixed-size chunks into type-2/type-3 records.

The encoder combines a :class:`~repro.core.transform.GDTransform` (the
algebraic split) with a :class:`~repro.core.dictionary.BasisDictionary` (the
bounded basis ↔ identifier mapping).  Three operating modes mirror the
paper's three measured configurations:

* ``no table`` — the dictionary is never consulted or filled; every chunk
  becomes a type-2 record (the 1.03× bar in Figure 3);
* ``static table`` — the dictionary is preloaded and never modified; chunks
  whose basis is known become type-3 records;
* ``dynamic learning`` — unknown bases are inserted on first sight, after an
  optional learning delay expressed in packets (the software stand-in for
  the 1.77 ms control-plane latency; the full latency model lives in
  :mod:`repro.zipline` / :mod:`repro.controlplane`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs as _obs
from repro.core.bits import align_up, int_to_bytes
from repro.core.dictionary import (
    BasisDictionary,
    EvictionPolicy,
    decode_snapshot_key,
    encode_snapshot_key,
)
from repro.core.records import CompressedRecord, GDRecord, RecordType, UncompressedRecord
from repro.core.transform import ChunkLike, GDFields, GDTransform
from repro.exceptions import CodingError, DictionaryError

__all__ = ["EncodedBatch", "EncoderMode", "EncoderStats", "GDEncoder"]


class EncoderMode(Enum):
    """Dictionary-handling mode (matches the Figure 3 scenarios)."""

    NO_TABLE = "no_table"
    STATIC = "static"
    DYNAMIC = "dynamic"

    @classmethod
    def from_name(cls, name: "str | EncoderMode") -> "EncoderMode":
        """Parse a mode from its name (case-insensitive) or pass through."""
        if isinstance(name, EncoderMode):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(mode.value for mode in cls)
            raise CodingError(
                f"unknown encoder mode {name!r}; valid modes: {valid}"
            ) from None


@dataclass
class EncoderStats:
    """Byte and packet accounting kept by the encoder.

    ``input_bits`` counts the original chunks; ``output_bits`` counts the
    unpadded record payloads; ``output_padded_bits`` includes the
    byte-alignment padding that the Tofino target imposes.  The ratios at the
    bottom of Figure 3 are ``output_padded_bits / input_bits``.
    """

    chunks: int = 0
    uncompressed_records: int = 0
    compressed_records: int = 0
    input_bits: int = 0
    output_bits: int = 0
    output_padded_bits: int = 0

    def record(self, record: GDRecord, input_bits: int) -> None:
        """Account for one emitted record."""
        self.chunks += 1
        self.input_bits += input_bits
        self.output_bits += record.payload_bits
        self.output_padded_bits += record.padded_bits
        if record.record_type is RecordType.COMPRESSED:
            self.compressed_records += 1
        else:
            self.uncompressed_records += 1

    @property
    def compression_ratio(self) -> float:
        """Padded output size over input size (Figure 3's numeric labels)."""
        if self.input_bits == 0:
            return 0.0
        return self.output_padded_bits / self.input_bits

    @property
    def unpadded_ratio(self) -> float:
        """Output size over input size ignoring alignment padding."""
        if self.input_bits == 0:
            return 0.0
        return self.output_bits / self.input_bits

    @property
    def input_bytes(self) -> float:
        """Input volume in bytes."""
        return self.input_bits / 8

    @property
    def output_bytes(self) -> float:
        """Padded output volume in bytes."""
        return self.output_padded_bits / 8

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "chunks": self.chunks,
            "uncompressed_records": self.uncompressed_records,
            "compressed_records": self.compressed_records,
            "input_bits": self.input_bits,
            "output_bits": self.output_bits,
            "output_padded_bits": self.output_padded_bits,
            "compression_ratio": self.compression_ratio,
            "unpadded_ratio": self.unpadded_ratio,
        }


class EncodedBatch:
    """Columnar result of :meth:`GDEncoder.encode_buffer_batch`.

    Holds one type tag per chunk plus the field columns, and behaves like
    the record tuple the eager encoder would have produced: length,
    iteration, indexing and equality all go through :meth:`materialize`,
    which builds the exact :class:`CompressedRecord` /
    :class:`UncompressedRecord` objects on first use.  The hot consumers
    never materialise — :meth:`pack_stream` serialises the container body
    straight from the columns (vectorized over the type-3 runs when numpy
    is available), which is where the batched codec pipeline gets its
    throughput.
    """

    __slots__ = (
        "_tags",
        "_identifiers",
        "_prefixes",
        "_bases",
        "_deviations",
        "_prefix_bits",
        "_basis_bits",
        "_deviation_bits",
        "_identifier_bits",
        "_padding",
        "_t2_padded",
        "_t3_padded",
        "_records",
    )

    def __init__(
        self,
        tags: bytes,
        identifiers: List[int],
        prefixes: List[int],
        bases: List[int],
        deviations: List[int],
        prefix_bits: int,
        basis_bits: int,
        deviation_bits: int,
        identifier_bits: int,
        padding: int,
        t2_padded: int,
        t3_padded: int,
    ):
        self._tags = tags
        self._identifiers = identifiers
        self._prefixes = prefixes
        self._bases = bases
        self._deviations = deviations
        self._prefix_bits = prefix_bits
        self._basis_bits = basis_bits
        self._deviation_bits = deviation_bits
        self._identifier_bits = identifier_bits
        self._padding = padding
        self._t2_padded = t2_padded
        self._t3_padded = t3_padded
        self._records: Optional[Tuple[GDRecord, ...]] = None

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[GDRecord]:
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, EncodedBatch):
            other = other.materialize()
        if isinstance(other, (tuple, list)):
            return self.materialize() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __repr__(self) -> str:
        return f"EncodedBatch({len(self._tags)} records)"

    def materialize(self) -> Tuple[GDRecord, ...]:
        """The classic record tuple, built once and cached."""
        records = self._records
        if records is None:
            prefixes = self._prefixes
            deviations = self._deviations
            bases = self._bases
            prefix_bits = self._prefix_bits
            basis_bits = self._basis_bits
            deviation_bits = self._deviation_bits
            identifier_bits = self._identifier_bits
            padding = self._padding
            next_identifier = iter(self._identifiers).__next__
            out: List[GDRecord] = []
            append = out.append
            for position, tag in enumerate(self._tags):
                if tag == 3:
                    append(
                        CompressedRecord(
                            prefix=prefixes[position],
                            identifier=next_identifier(),
                            deviation=deviations[position],
                            prefix_bits=prefix_bits,
                            identifier_bits=identifier_bits,
                            deviation_bits=deviation_bits,
                            alignment_padding_bits=0,
                        )
                    )
                else:
                    append(
                        UncompressedRecord(
                            prefix=prefixes[position],
                            basis=bases[position],
                            deviation=deviations[position],
                            prefix_bits=prefix_bits,
                            basis_bits=basis_bits,
                            deviation_bits=deviation_bits,
                            alignment_padding_bits=padding,
                        )
                    )
            records = self._records = tuple(out)
        return records

    def pack_stream(self) -> bytes:
        """The container body: one tag byte plus the payload per record.

        Byte-identical to concatenating ``bytes([tag]) + record.to_bytes()``
        over :meth:`materialize`, but built from the columns.  When numpy
        is available and the type-3 payload fits a ``uint64``, all type-3
        rows are packed as one ``(count, 1 + size)`` byte matrix and the
        (rare) type-2 records are spliced between the runs.
        """
        tags = self._tags
        count = len(tags)
        if count == 0:
            return b""
        identifier_bits = self._identifier_bits
        basis_bits = self._basis_bits
        deviation_bits = self._deviation_bits
        prefixes = self._prefixes
        bases = self._bases
        deviations = self._deviations
        t2_padded = self._t2_padded
        t3_padded = self._t3_padded
        t3_size = t3_padded // 8
        np = None
        if self._identifiers and t3_size <= 8:
            from repro.core.backends.numpy_backend import _numpy

            np = _numpy()[0]
        if np is None:
            next_identifier = iter(self._identifiers).__next__
            parts: List[bytes] = []
            append = parts.append
            for position in range(count):
                if tags[position] == 3:
                    value = (
                        ((prefixes[position] << identifier_bits) | next_identifier())
                        << deviation_bits
                    ) | deviations[position]
                    append(b"\x03" + int_to_bytes(value, t3_padded))
                else:
                    value = (
                        ((prefixes[position] << basis_bits) | bases[position])
                        << deviation_bits
                    ) | deviations[position]
                    append(b"\x02" + int_to_bytes(value, t2_padded))
            return b"".join(parts)
        tags_np = np.frombuffer(tags, dtype=np.uint8)
        indices = np.flatnonzero(tags_np == 3)
        values = np.asarray(self._identifiers, dtype=np.uint64) << np.uint64(
            deviation_bits
        )
        if self._prefix_bits:
            values = values | (
                np.asarray(prefixes, dtype=np.uint64)[indices]
                << np.uint64(deviation_bits + identifier_bits)
            )
        values = values | np.asarray(deviations, dtype=np.uint64)[indices]
        row = 1 + t3_size
        matrix = np.empty((len(indices), row), dtype=np.uint8)
        matrix[:, 0] = 3
        for column in range(t3_size):
            matrix[:, 1 + column] = (
                values >> np.uint64(8 * (t3_size - 1 - column))
            ).astype(np.uint8)
        block = matrix.tobytes()
        if len(indices) == count:
            return block
        parts = []
        append = parts.append
        consumed = 0
        for rank, position in enumerate(np.flatnonzero(tags_np == 2).tolist()):
            preceding = position - rank  # type-3 rows before this type-2
            if preceding > consumed:
                append(block[consumed * row : preceding * row])
            value = (
                ((prefixes[position] << basis_bits) | bases[position])
                << deviation_bits
            ) | deviations[position]
            append(b"\x02" + int_to_bytes(value, t2_padded))
            consumed = preceding
        append(block[consumed * row :])
        return b"".join(parts)


class GDEncoder:
    """Encode chunks into GD records using a bounded basis dictionary.

    Parameters
    ----------
    transform:
        The GD transformation to apply to each chunk.
    dictionary:
        The basis dictionary.  Optional for :attr:`EncoderMode.NO_TABLE`.
    mode:
        One of ``no_table``, ``static`` or ``dynamic``.
    identifier_bits:
        Width of the identifier field in type-3 records.  Defaults to the
        dictionary's natural width (``ceil(log2(capacity))``), 15 bits for
        the paper's configuration.
    alignment_padding_bits:
        Extra padding added to the *uncompressed* (type-2) representation to
        model the Tofino container-alignment overhead (8 bits in the paper's
        deployment, producing the 1.03 ratio).  Type-3 records are already
        byte aligned for the paper's parameters and get no extra padding.
    learning_delay_chunks:
        In dynamic mode, the number of subsequent chunks that still see the
        dictionary miss after a new basis is first observed — a simple
        packet-counted stand-in for the control-plane installation latency.
        0 means learning is instantaneous.
    """

    def __init__(
        self,
        transform: GDTransform,
        dictionary: Optional[BasisDictionary] = None,
        mode: "str | EncoderMode" = EncoderMode.DYNAMIC,
        identifier_bits: Optional[int] = None,
        alignment_padding_bits: int = 8,
        learning_delay_chunks: int = 0,
    ):
        self._transform = transform
        self._mode = EncoderMode.from_name(mode)
        if self._mode is not EncoderMode.NO_TABLE and dictionary is None:
            raise DictionaryError(f"mode {self._mode.value} requires a dictionary")
        self._dictionary = dictionary
        if identifier_bits is None:
            identifier_bits = (
                dictionary.identifier_width() if dictionary is not None else 15
            )
        if dictionary is not None and (1 << identifier_bits) < dictionary.capacity:
            raise DictionaryError(
                f"identifier width {identifier_bits} cannot address a dictionary "
                f"of capacity {dictionary.capacity}"
            )
        self._identifier_bits = identifier_bits
        if alignment_padding_bits < 0:
            raise CodingError("alignment padding cannot be negative")
        self._alignment_padding_bits = alignment_padding_bits
        if learning_delay_chunks < 0:
            raise CodingError("learning delay cannot be negative")
        self._learning_delay_chunks = learning_delay_chunks
        # (prefix, basis) -> chunk index at which the mapping becomes usable.
        self._pending_activation: Dict[object, int] = {}
        # Per-type payload sizes are constants of the configuration; the
        # batch loop accumulates them instead of asking every record.
        t2_bits = transform.prefix_bits + transform.basis_bits + transform.deviation_bits
        self._t2_bits = t2_bits
        self._t2_padded = align_up(t2_bits + alignment_padding_bits, 8)
        t3_bits = transform.prefix_bits + identifier_bits + transform.deviation_bits
        self._t3_bits = t3_bits
        self._t3_padded = align_up(t3_bits, 8)
        self.stats = EncoderStats()

    # -- accessors ---------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The GD transformation in use."""
        return self._transform

    @property
    def dictionary(self) -> Optional[BasisDictionary]:
        """The basis dictionary (``None`` in no-table mode)."""
        return self._dictionary

    @property
    def mode(self) -> EncoderMode:
        """Configured dictionary-handling mode."""
        return self._mode

    @property
    def identifier_bits(self) -> int:
        """Width of the identifier field in compressed records."""
        return self._identifier_bits

    @property
    def alignment_padding_bits(self) -> int:
        """Padding added to type-2 payloads for container alignment."""
        return self._alignment_padding_bits

    # -- encoding ---------------------------------------------------------------

    def encode_chunk(self, chunk: ChunkLike) -> GDRecord:
        """Encode one chunk into a type-2 or type-3 record."""
        return self._encode_fields([self._transform.split_fields(chunk)])[0]

    def encode_stream(self, chunks: Iterable[ChunkLike]) -> Iterator[GDRecord]:
        """Lazily encode an iterable of chunks."""
        for chunk in chunks:
            yield self.encode_chunk(chunk)

    def encode_all(self, chunks: Iterable[ChunkLike]) -> List[GDRecord]:
        """Eagerly encode an iterable of chunks into a list of records."""
        return self.encode_batch(chunks)

    def encode_batch(self, chunks: Iterable[ChunkLike]) -> List[GDRecord]:
        """Encode many chunks with the per-chunk accounting amortized.

        Produces exactly the records (and final statistics) of repeated
        :meth:`encode_chunk` calls, but updates :attr:`stats` once at the
        end instead of six counter writes per chunk.
        """
        return self._encode_fields(map(self._transform.split_fields, chunks))

    def encode_buffer(self, data: "bytes | bytearray | memoryview") -> List[GDRecord]:
        """Encode a contiguous buffer of whole chunks (the fastest path).

        Combines :meth:`GDTransform.split_batch_fields` with the amortized
        record loop; this is what :meth:`GDCodec.compress` feeds whole
        payloads through.
        """
        return self._encode_fields(self._transform.split_batch_fields(data))

    def encode_chunks(
        self, chunks: "bytes | bytearray | memoryview | Iterable[ChunkLike]"
    ) -> List[GDRecord]:
        """Batch entry point for either framing of *many chunks*.

        A contiguous bytes-like buffer takes the fused zero-copy batch path
        (identical to :meth:`encode_buffer`); any other iterable is encoded
        chunk by chunk through the same amortized record loop.  Streaming
        codecs and the replay tooling call this instead of dispatching one
        chunk at a time.
        """
        if isinstance(chunks, (bytes, bytearray, memoryview)):
            return self._encode_fields(self._transform.split_batch_fields(chunks))
        return self.encode_batch(chunks)

    def encode_buffer_batch(
        self, data: "bytes | bytearray | memoryview"
    ) -> Optional[EncodedBatch]:
        """Encode a buffer of whole chunks into a columnar batch.

        Runs the same dictionary loop as :meth:`encode_buffer` — identical
        hit/miss decisions, learning-delay handling and statistics — but
        over the backend's column output, skipping per-chunk record
        construction entirely.  The returned :class:`EncodedBatch` compares
        (and materialises) equal to :meth:`encode_buffer`'s record list.

        Returns ``None`` when lifecycle tracing is active: the per-record
        trace events require the eager loop, so callers fall back to it.
        """
        if _obs.TRACER.enabled:
            return None
        transform = self._transform
        split = transform.split_batch_columns(data)
        prefixes, bases, deviations = split.columns()
        stats = self.stats
        dictionary = self._dictionary
        no_table = self._mode is EncoderMode.NO_TABLE or dictionary is None
        dynamic = self._mode is EncoderMode.DYNAMIC
        lookup = None if no_table else dictionary.lookup
        insert = None if no_table else dictionary.insert
        learning_delay = self._learning_delay_chunks
        pending = self._pending_activation
        is_active = self._is_active

        count = split.count
        tags = bytearray(count)
        identifiers: List[int] = []
        append_identifier = identifiers.append
        index = stats.chunks
        compressed = 0
        position = 0
        for basis in bases:
            identifier = None if no_table else lookup(basis)
            if identifier is not None and (not pending or is_active(basis, index)):
                tags[position] = 3
                append_identifier(identifier)
                compressed += 1
            else:
                if identifier is None and dynamic:
                    insert(basis)
                    if learning_delay:
                        pending[basis] = index + 1 + learning_delay
                tags[position] = 2
            index += 1
            position += 1
        uncompressed = count - compressed
        stats.chunks = index
        stats.input_bits += count * transform.chunk_bits
        stats.output_bits += compressed * self._t3_bits + uncompressed * self._t2_bits
        stats.output_padded_bits += (
            compressed * self._t3_padded + uncompressed * self._t2_padded
        )
        stats.compressed_records += compressed
        stats.uncompressed_records += uncompressed
        return EncodedBatch(
            bytes(tags),
            identifiers,
            prefixes,
            bases,
            deviations,
            prefix_bits=transform.prefix_bits,
            basis_bits=transform.basis_bits,
            deviation_bits=transform.deviation_bits,
            identifier_bits=self._identifier_bits,
            padding=self._alignment_padding_bits,
            t2_padded=self._t2_padded,
            t3_padded=self._t3_padded,
        )

    # -- internals -----------------------------------------------------------------

    def _encode_fields(self, fields_iterable: Iterable[GDFields]) -> List[GDRecord]:
        """Record-building loop shared by the batch entry points.

        Operates on plain ``(prefix, basis, deviation)`` triples, with the
        dictionary probe, mode dispatch and per-type payload sizes bound
        into locals — one pass, no intermediate part objects.
        """
        stats = self.stats
        transform = self._transform
        prefix_bits = transform.prefix_bits
        basis_bits = transform.basis_bits
        deviation_bits = transform.deviation_bits
        identifier_bits = self._identifier_bits
        padding = self._alignment_padding_bits
        t2_bits = self._t2_bits
        t2_padded = self._t2_padded
        t3_bits = self._t3_bits
        t3_padded = self._t3_padded
        dictionary = self._dictionary
        no_table = self._mode is EncoderMode.NO_TABLE or dictionary is None
        dynamic = self._mode is EncoderMode.DYNAMIC
        lookup = None if no_table else dictionary.lookup
        insert = None if no_table else dictionary.insert
        learning_delay = self._learning_delay_chunks
        pending = self._pending_activation
        is_active = self._is_active
        # Tracing guard hoisted out of the loop: when disabled this costs
        # one attribute lookup per *batch*, not per chunk.
        tracer = _obs.TRACER
        traced = tracer.enabled

        index = stats.chunks
        compressed = 0
        output_bits = 0
        output_padded_bits = 0
        records: List[GDRecord] = []
        append = records.append
        for prefix, basis, deviation in fields_iterable:
            identifier = None if no_table else lookup(basis)
            if identifier is not None and (not pending or is_active(basis, index)):
                append(
                    CompressedRecord(
                        prefix=prefix,
                        identifier=identifier,
                        deviation=deviation,
                        prefix_bits=prefix_bits,
                        identifier_bits=identifier_bits,
                        deviation_bits=deviation_bits,
                        alignment_padding_bits=0,
                    )
                )
                compressed += 1
                output_bits += t3_bits
                output_padded_bits += t3_padded
                if traced:
                    tracer.instant(
                        "gd.encode",
                        "gd-encoder",
                        args={
                            "outcome": "hit",
                            "identifier": identifier,
                            "chunk_index": index,
                        },
                    )
            else:
                if identifier is None and dynamic:
                    learned_id, evicted = insert(basis)
                    if learning_delay:
                        # ``index`` counts the chunks *before* this one; the
                        # mapping becomes usable after the current chunk plus
                        # the configured number of delayed chunks.
                        pending[basis] = index + 1 + learning_delay
                    if traced:
                        miss_args = {
                            "outcome": "miss",
                            "learned_identifier": learned_id,
                            "chunk_index": index,
                        }
                        if evicted is not None:
                            miss_args["evicted_basis"] = evicted
                        tracer.instant("gd.encode", "gd-encoder", args=miss_args)
                elif traced:
                    tracer.instant(
                        "gd.encode",
                        "gd-encoder",
                        args={
                            "outcome": "pending" if identifier is not None else "miss",
                            "chunk_index": index,
                        },
                    )
                append(
                    UncompressedRecord(
                        prefix=prefix,
                        basis=basis,
                        deviation=deviation,
                        prefix_bits=prefix_bits,
                        basis_bits=basis_bits,
                        deviation_bits=deviation_bits,
                        alignment_padding_bits=padding,
                    )
                )
                output_bits += t2_bits
                output_padded_bits += t2_padded
            index += 1
        count = index - stats.chunks
        stats.chunks = index
        stats.input_bits += count * transform.chunk_bits
        stats.output_bits += output_bits
        stats.output_padded_bits += output_padded_bits
        stats.compressed_records += compressed
        stats.uncompressed_records += count - compressed
        return records

    def _is_active(self, key: object, chunk_index: int) -> bool:
        """True when a learned mapping has passed its activation delay."""
        activation = self._pending_activation.get(key)
        if activation is None:
            return True
        if chunk_index >= activation:
            del self._pending_activation[key]
            return True
        return False

    def reset_stats(self) -> None:
        """Zero the accounting counters without touching the dictionary."""
        self.stats = EncoderStats()

    # -- snapshot / restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Canonical, JSON-serialisable snapshot of the encoder's state.

        Captures everything a resumed encoder needs to continue exactly
        where this one stopped: the dictionary (mapping, recency order,
        identifier allocator), the pending-activation ledger of mappings
        still inside their learning delay, and the byte/packet accounting.
        The configuration itself (transform, mode, widths) is *not* part of
        the snapshot — restore requires an identically configured encoder.
        """
        stats = self.stats
        state: Dict[str, object] = {
            "mode": self._mode.value,
            "pending_activation": [
                [encode_snapshot_key(key), activation]
                for key, activation in self._pending_activation.items()
            ],
            "stats": {
                "chunks": stats.chunks,
                "uncompressed_records": stats.uncompressed_records,
                "compressed_records": stats.compressed_records,
                "input_bits": stats.input_bits,
                "output_bits": stats.output_bits,
                "output_padded_bits": stats.output_padded_bits,
            },
        }
        if self._dictionary is not None:
            state["dictionary"] = self._dictionary.snapshot_state()
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume from a snapshot taken by an identically configured encoder."""
        if state.get("mode") != self._mode.value:
            raise CodingError(
                f"snapshot mode {state.get('mode')!r} does not match encoder "
                f"mode {self._mode.value!r}"
            )
        if "dictionary" in state:
            if self._dictionary is None:
                raise DictionaryError(
                    "snapshot carries a dictionary but this encoder has none"
                )
            self._dictionary.restore_state(state["dictionary"])
        self._pending_activation = {
            decode_snapshot_key(key): int(activation)
            for key, activation in state.get("pending_activation", [])
        }
        stats = state.get("stats", {})
        self.stats = EncoderStats(
            chunks=int(stats.get("chunks", 0)),
            uncompressed_records=int(stats.get("uncompressed_records", 0)),
            compressed_records=int(stats.get("compressed_records", 0)),
            input_bits=int(stats.get("input_bits", 0)),
            output_bits=int(stats.get("output_bits", 0)),
            output_padded_bits=int(stats.get("output_padded_bits", 0)),
        )
