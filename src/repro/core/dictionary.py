"""Basis dictionary: the bounded basis ↔ identifier mapping at the heart of GD.

ZipLine replaces a (prefix, basis) pair that has been seen before with a
short identifier of ``t`` bits, so at most ``2**t`` bases can be cached
(32,768 for the paper's ``t = 15``).  When the identifier pool is exhausted
the least recently used entry is recycled (Section 5 of the paper).

The same data structure is used in three places:

* inside :class:`~repro.core.codec.GDCodec` for the pure-software codec;
* by the control plane (:mod:`repro.controlplane`) as the authoritative copy
  of the mapping that it pushes into the switches' match-action tables;
* by the baselines (classic deduplication uses it with the raw chunk as key).

Eviction policies other than LRU (FIFO, random) are provided for the
ablation study called out in DESIGN.md.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import DictionaryError

__all__ = [
    "EvictionPolicy",
    "DictionaryStats",
    "BasisDictionary",
    "encode_snapshot_key",
    "decode_snapshot_key",
]

#: Sentinel marking an empty hot-entry cache (``None`` is a legal key).
_NO_HOT = object()


def encode_snapshot_key(key: Hashable) -> object:
    """Encode a dictionary key into a canonical JSON-serialisable form.

    Bases are plain integers in the GD pipeline, but the same dictionary
    backs the dedup baselines (bytes keys) and composite ``(prefix, basis)``
    keys, so all three shapes round-trip.  Tuples and bytes are wrapped in
    single-key marker objects because JSON has no native encoding for them.
    """
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    if isinstance(key, bytes):
        return {"__bytes__": key.hex()}
    if isinstance(key, tuple):
        return {"__tuple__": [encode_snapshot_key(item) for item in key]}
    raise DictionaryError(
        f"cannot snapshot dictionary key of type {type(key).__name__!r}"
    )


def decode_snapshot_key(value: object) -> Hashable:
    """Invert :func:`encode_snapshot_key` (lists decode back to tuples)."""
    if isinstance(value, dict):
        if "__bytes__" in value:
            return bytes.fromhex(value["__bytes__"])
        if "__tuple__" in value:
            return tuple(decode_snapshot_key(item) for item in value["__tuple__"])
        raise DictionaryError(f"unrecognised snapshot key encoding {value!r}")
    if isinstance(value, list):
        return tuple(decode_snapshot_key(item) for item in value)
    return value


class EvictionPolicy(Enum):
    """Replacement policy applied when the identifier pool is exhausted."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"

    @classmethod
    def from_name(cls, name: "str | EvictionPolicy") -> "EvictionPolicy":
        """Parse a policy from its name (case-insensitive) or pass through."""
        if isinstance(name, EvictionPolicy):
            return name
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(policy.value for policy in cls)
            raise DictionaryError(
                f"unknown eviction policy {name!r}; valid policies: {valid}"
            ) from None


@dataclass
class DictionaryStats:
    """Counters describing dictionary behaviour during a run."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_insertions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that found an existing mapping."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting helpers."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected_insertions": self.rejected_insertions,
            "hit_ratio": self.hit_ratio,
        }


class BasisDictionary:
    """Bounded, bidirectional mapping between bases and short identifiers.

    Identifiers are integers in ``[0, capacity)``.  The dictionary hands out
    the lowest never-used identifier first and only starts recycling once the
    pool is exhausted, mirroring the control-plane behaviour described in the
    paper ("when there are unused identifiers, the control plane selects the
    least recently used one").

    Keys can be any hashable value; ZipLine uses ``(prefix, basis)`` tuples.

    The ``random`` eviction policy draws from a private
    :class:`random.Random` instance seeded with ``seed`` — never from the
    module-global RNG — so ablation runs are reproducible end to end when
    callers inject a seed (see ``GDCodec(eviction_seed=...)`` and
    ``ExactDedupBaseline(eviction_seed=...)``) and two dictionaries given
    the same seed and call sequence evict identically.
    """

    def __init__(
        self,
        capacity: int,
        policy: "str | EvictionPolicy" = EvictionPolicy.LRU,
        seed: Optional[int] = None,
    ):
        if capacity <= 0:
            raise DictionaryError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._policy = EvictionPolicy.from_name(policy)
        self._random = random.Random(seed)
        # key -> identifier, maintained in recency order (oldest first) for
        # LRU, insertion order for FIFO.
        self._key_to_id: "OrderedDict[Hashable, int]" = OrderedDict()
        self._id_to_key: Dict[int, Hashable] = {}
        # Identifier allocation is lazy: never-used identifiers are handed
        # out in increasing order from a counter, and explicitly removed
        # ones are recycled from a small list.  Memory therefore scales
        # with the entries actually mapped, not with the capacity — a
        # dictionary sized from an untrusted container header must not
        # allocate ``capacity`` list slots up front.
        self._freed_ids: List[int] = []
        self._next_unused_id = 0
        # Hot-entry cache: the key whose recency metadata is already
        # up to date (the most recently looked-up/inserted/touched key).
        # Bursty traces hit the same basis many times in a row; the cache
        # turns those repeat hits into one equality check — no OrderedDict
        # probe, no move_to_end.  Invalidated whenever the entry could be
        # displaced (eviction, removal, external install, clear).
        self._hot_key: Hashable = _NO_HOT
        self._hot_id: int = -1
        self.stats = DictionaryStats()

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously mapped bases."""
        return self._capacity

    @property
    def policy(self) -> EvictionPolicy:
        """Configured eviction policy."""
        return self._policy

    def __len__(self) -> int:
        return len(self._key_to_id)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._key_to_id

    def is_full(self) -> bool:
        """True when every identifier is currently assigned."""
        return len(self._key_to_id) >= self._capacity

    def keys(self) -> Iterator[Hashable]:
        """Iterate over currently mapped keys (no recency side effects)."""
        return iter(list(self._key_to_id.keys()))

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        """Iterate over (key, identifier) pairs (no recency side effects)."""
        return iter(list(self._key_to_id.items()))

    def identifier_width(self) -> int:
        """Number of bits needed to represent any identifier."""
        return max((self._capacity - 1).bit_length(), 1)

    # -- lookups -------------------------------------------------------------

    def lookup(self, key: Hashable, touch: bool = True) -> Optional[int]:
        """Identifier for ``key`` or ``None``; optionally refresh recency.

        Repeat lookups of the hottest entry short-circuit through the
        hot-entry cache: the common dedup hit of a bursty trace costs one
        equality check instead of a dict probe plus a recency update.
        """
        stats = self.stats
        stats.lookups += 1
        if key == self._hot_key:
            # The hot key's recency is up to date by construction, so both
            # the touching and the non-touching variants are satisfied.
            stats.hits += 1
            return self._hot_id
        identifier = self._key_to_id.get(key)
        if identifier is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if self._policy is EvictionPolicy.LRU:
            if touch:
                self._key_to_id.move_to_end(key)
                self._hot_key = key
                self._hot_id = identifier
        else:
            # FIFO/random lookups have no recency side effect, so the hot
            # cache is unconditionally safe to arm.
            self._hot_key = key
            self._hot_id = identifier
        return identifier

    def peek(self, key: Hashable) -> Optional[int]:
        """Identifier for ``key`` without updating recency or counters."""
        return self._key_to_id.get(key)

    def touch(self, key: Hashable) -> bool:
        """Refresh the recency of ``key`` without counting a lookup.

        Returns ``True`` when the key exists.  Used by the decoder side to
        keep its recency order in lock-step with the encoder so that both
        dictionaries make identical eviction decisions.
        """
        if key == self._hot_key:
            return True
        identifier = self._key_to_id.get(key)
        if identifier is None:
            return False
        if self._policy is EvictionPolicy.LRU:
            self._key_to_id.move_to_end(key)
            self._hot_key = key
            self._hot_id = identifier
        return True

    def reverse_lookup(self, identifier: int) -> Optional[Hashable]:
        """Key currently mapped to ``identifier``, or ``None``."""
        self._check_identifier(identifier)
        return self._id_to_key.get(identifier)

    def _check_identifier(self, identifier: int) -> None:
        if not 0 <= identifier < self._capacity:
            raise DictionaryError(
                f"identifier {identifier} out of range [0, {self._capacity})"
            )

    # -- insertion / eviction --------------------------------------------------

    def insert(self, key: Hashable) -> Tuple[int, Optional[Hashable]]:
        """Map ``key`` to an identifier, evicting if necessary.

        Returns ``(identifier, evicted_key)`` where ``evicted_key`` is
        ``None`` unless an existing mapping had to be recycled.  Inserting a
        key that is already mapped refreshes its recency and returns the
        existing identifier.
        """
        existing = self._key_to_id.get(key)
        if existing is not None:
            self.stats.rejected_insertions += 1
            if self._policy is EvictionPolicy.LRU:
                self._key_to_id.move_to_end(key)
                self._hot_key = key
                self._hot_id = existing
            return existing, None

        evicted_key: Optional[Hashable] = None
        identifier = self._allocate_identifier()
        if identifier is None:
            evicted_key, identifier = self._evict()
        self._key_to_id[key] = identifier
        self._id_to_key[identifier] = key
        self._hot_key = key
        self._hot_id = identifier
        self.stats.insertions += 1
        return identifier, evicted_key

    def _allocate_identifier(self) -> Optional[int]:
        """Next free identifier, or ``None`` when the pool is exhausted.

        Recycled identifiers are preferred; fresh ones come from the
        counter in increasing order ("the lowest never-used identifier
        first").  Identifiers installed externally via
        :meth:`insert_with_identifier` are skipped in both sources.
        """
        while self._freed_ids:
            identifier = self._freed_ids.pop()
            if identifier not in self._id_to_key:
                return identifier
        while self._next_unused_id < self._capacity:
            identifier = self._next_unused_id
            self._next_unused_id += 1
            if identifier not in self._id_to_key:
                return identifier
        return None

    def insert_with_identifier(self, key: Hashable, identifier: int) -> None:
        """Install an externally chosen mapping (used by the decoder side).

        The decompressing switch receives (identifier, basis) pairs chosen by
        the control plane; it must accept them verbatim, displacing whatever
        the identifier previously pointed at.
        """
        self._check_identifier(identifier)
        if key in self._key_to_id and self._key_to_id[key] != identifier:
            raise DictionaryError(
                f"key {key!r} is already mapped to identifier "
                f"{self._key_to_id[key]}, cannot remap to {identifier}"
            )
        previous_key = self._id_to_key.get(identifier)
        if previous_key is not None and previous_key != key:
            del self._key_to_id[previous_key]
            if previous_key == self._hot_key:
                self._hot_key = _NO_HOT
            self.stats.evictions += 1
        is_new_key = key not in self._key_to_id
        self._key_to_id[key] = identifier
        self._id_to_key[identifier] = key
        if is_new_key:
            # The freshly appended key is now the most recent entry, so the
            # previous hot key is no longer MRU — arm the cache on the new
            # key instead (an existing key keeps its position, so the cache
            # stays valid as-is).
            self._hot_key = key
            self._hot_id = identifier
        self.stats.insertions += 1

    def _evict(self) -> Tuple[Hashable, int]:
        """Remove one entry according to the configured policy."""
        if not self._key_to_id:
            raise DictionaryError("cannot evict from an empty dictionary")
        if self._policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO):
            key, identifier = next(iter(self._key_to_id.items()))
        else:
            key = self._random.choice(list(self._key_to_id.keys()))
            identifier = self._key_to_id[key]
        del self._key_to_id[key]
        del self._id_to_key[identifier]
        if key == self._hot_key:
            self._hot_key = _NO_HOT
        self.stats.evictions += 1
        return key, identifier

    def remove(self, key: Hashable) -> Optional[int]:
        """Remove ``key`` explicitly; returns its identifier or ``None``."""
        identifier = self._key_to_id.pop(key, None)
        if identifier is None:
            return None
        del self._id_to_key[identifier]
        if key == self._hot_key:
            self._hot_key = _NO_HOT
        self._freed_ids.append(identifier)
        return identifier

    def clear(self) -> None:
        """Forget every mapping and return all identifiers to the pool."""
        self._key_to_id.clear()
        self._id_to_key.clear()
        self._freed_ids = []
        self._next_unused_id = 0
        self._hot_key = _NO_HOT

    # -- bulk helpers -----------------------------------------------------------

    def preload(self, keys: Iterator[Hashable]) -> int:
        """Insert keys up front (the paper's *static table* scenario).

        Returns the number of distinct keys actually mapped.  Raises
        :class:`DictionaryError` if the distinct keys exceed the capacity —
        a static table cannot silently drop mappings.
        """
        distinct = []
        seen = set()
        for key in keys:
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        if len(distinct) > self._capacity:
            raise DictionaryError(
                f"static preload of {len(distinct)} bases exceeds the dictionary "
                f"capacity of {self._capacity}"
            )
        for key in distinct:
            self.insert(key)
        return len(distinct)

    def snapshot(self) -> Dict[Hashable, int]:
        """A plain-dict copy of the current mapping (for tests/telemetry)."""
        return dict(self._key_to_id)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Canonical, JSON-serialisable snapshot of the complete state.

        Entries are emitted in recency order (oldest first), so restoring
        reproduces not just the mapping but every future eviction decision.
        The identifier allocator (freed list, never-used counter) and the
        counters are included; the hot-entry cache is derived state and is
        rebuilt cold on restore, which has no observable effect beyond the
        first lookup taking the slow path.
        """
        stats = self.stats
        return {
            "capacity": self._capacity,
            "policy": self._policy.value,
            "entries": [
                [encode_snapshot_key(key), identifier]
                for key, identifier in self._key_to_id.items()
            ],
            "freed_ids": list(self._freed_ids),
            "next_unused_id": self._next_unused_id,
            "stats": {
                "lookups": stats.lookups,
                "hits": stats.hits,
                "misses": stats.misses,
                "insertions": stats.insertions,
                "evictions": stats.evictions,
                "rejected_insertions": stats.rejected_insertions,
            },
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Replace this dictionary's state with a snapshot's.

        The snapshot must come from a dictionary with the same capacity and
        eviction policy — restoring across configurations would silently
        change eviction behaviour, so it is rejected instead.
        """
        if state.get("capacity") != self._capacity:
            raise DictionaryError(
                f"snapshot capacity {state.get('capacity')} does not match "
                f"dictionary capacity {self._capacity}"
            )
        if state.get("policy") != self._policy.value:
            raise DictionaryError(
                f"snapshot policy {state.get('policy')!r} does not match "
                f"dictionary policy {self._policy.value!r}"
            )
        key_to_id: "OrderedDict[Hashable, int]" = OrderedDict()
        id_to_key: Dict[int, Hashable] = {}
        for encoded_key, identifier in state["entries"]:
            key = decode_snapshot_key(encoded_key)
            self._check_identifier(identifier)
            key_to_id[key] = identifier
            id_to_key[identifier] = key
        self._key_to_id = key_to_id
        self._id_to_key = id_to_key
        self._freed_ids = list(state["freed_ids"])
        self._next_unused_id = int(state["next_unused_id"])
        self._hot_key = _NO_HOT
        self._hot_id = -1
        stats = state.get("stats", {})
        self.stats = DictionaryStats(
            lookups=int(stats.get("lookups", 0)),
            hits=int(stats.get("hits", 0)),
            misses=int(stats.get("misses", 0)),
            insertions=int(stats.get("insertions", 0)),
            evictions=int(stats.get("evictions", 0)),
            rejected_insertions=int(stats.get("rejected_insertions", 0)),
        )
