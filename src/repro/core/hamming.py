"""Hamming codes driven by CRC arithmetic, as used by the GD transformation.

A Hamming code of order ``m`` has length ``n = 2**m - 1`` and dimension
``k = n - m``.  ZipLine never uses the code for error *correction*; instead
it exploits the code's algebra to split an arbitrary ``n``-bit chunk ``B``
into a ``k``-bit **basis** and an ``m``-bit **deviation** (the syndrome):

* encoding (compression direction, Figure 1 of the paper):
  ``s = CRC_m(B)``; the syndrome lookup table maps ``s`` to the single bit
  position whose flip turns ``B`` into a codeword ``B'``; the basis is the
  ``k`` message bits of ``B'``;
* decoding (decompression direction, Figure 2): the basis is zero-padded and
  fed through the same CRC to recover the parity bits, rebuilding ``B'``;
  the same syndrome lookup table gives the mask that flips the deviated bit
  back, recovering ``B`` exactly.

Because every ``n``-bit value decomposes uniquely into (basis, syndrome),
the transform is lossless and bijective: ``2**k * 2**m == 2**n``.

The class below also exposes the textbook machinery (generator and
parity-check matrices, systematic encoding, single-error correction) so the
library doubles as a usable Hamming-code implementation, and so the
equivalence claims of Table 2 can be tested directly against the matrix
formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backends import MIN_BATCH_CHUNKS as _MIN_BACKEND_BASES
from repro.core.bits import BitVector, mask
from repro.core.crc import (
    CrcEngine,
    byte_remainder_function,
    lane_tables,
    poly_mod,
    poly_mod_table,
    syndrome_crc,
)
from repro.core.polynomials import HammingPolynomial, polynomial_for_order
from repro.exceptions import CodingError

__all__ = [
    "HammingCode",
    "SyndromeTable",
    "hamming_parameters_for_order",
]


def hamming_parameters_for_order(m: int) -> Tuple[int, int]:
    """Return ``(n, k)`` for a Hamming code of order ``m``."""
    if m < 2:
        raise CodingError(f"Hamming order must be at least 2, got {m}")
    n = (1 << m) - 1
    return n, n - m


@dataclass(frozen=True)
class SyndromeTable:
    """The syndrome → error-position lookup table (step ➌ in Figure 1).

    ``positions[s]`` gives the bit position (0 = least significant bit of the
    chunk) whose single-bit error produces syndrome ``s``; syndrome 0 maps to
    ``None`` (no deviation).  ``masks[s]`` is the corresponding n-bit XOR
    mask — precomputed exactly like the constant P4 table entries that the
    paper generates with a short C++/Boost.CRC program.
    """

    order: int
    positions: Tuple[Optional[int], ...]
    masks: Tuple[int, ...]

    def position_for(self, syndrome: int) -> Optional[int]:
        """Error bit position for ``syndrome`` (``None`` for syndrome 0)."""
        if not 0 <= syndrome < len(self.positions):
            raise CodingError(
                f"syndrome {syndrome} out of range for order {self.order}"
            )
        return self.positions[syndrome]

    def mask_for(self, syndrome: int) -> int:
        """n-bit XOR mask for ``syndrome`` (0 for syndrome 0)."""
        if not 0 <= syndrome < len(self.masks):
            raise CodingError(
                f"syndrome {syndrome} out of range for order {self.order}"
            )
        return self.masks[syndrome]

    def entries(self) -> List[Tuple[int, Optional[int]]]:
        """All (syndrome, position) pairs, syndrome 0 first."""
        return list(enumerate(self.positions))


class HammingCode:
    """A cyclic Hamming code of order ``m`` built from a generator polynomial.

    Parameters
    ----------
    m:
        Parity width.  ``n = 2**m - 1`` and ``k = n - m`` follow.
    polynomial:
        Optional full-form generator polynomial (including the leading
        ``x**m`` term).  Defaults to the Table 1 entry for this order.

    The instance owns a :class:`~repro.core.crc.CrcEngine` configured in
    plain-remainder mode — the software twin of the Tofino CRC extern that
    the hardware implementation programs with the Table 1 parameter.
    """

    def __init__(self, m: int, polynomial: Optional[int] = None):
        n, k = hamming_parameters_for_order(m)
        if polynomial is None:
            entry: Optional[HammingPolynomial] = polynomial_for_order(m)
            polynomial = entry.full_polynomial
        else:
            entry = None
            if polynomial.bit_length() - 1 != m:
                raise CodingError(
                    f"polynomial degree {polynomial.bit_length() - 1} does not "
                    f"match requested order m={m}"
                )
            if not polynomial & 1:
                raise CodingError("generator polynomial must have a non-zero constant term")
        self._m = m
        self._n = n
        self._k = k
        self._full_polynomial = polynomial
        self._table_entry = entry
        self._crc = syndrome_crc(polynomial ^ (1 << m), m)
        self._syndrome_table = self._build_syndrome_table()
        # Precomputed hot-path state: the error-mask array indexed directly
        # by syndrome and a fused bytes→remainder closure over the shared
        # 256-entry CRC table.  The GD fast path (transform batch split and
        # the switch models) reduces whole chunks through these without
        # re-entering the checked CrcEngine/SyndromeTable layers.
        self._error_masks: Tuple[int, ...] = self._syndrome_table.masks
        self._byte_remainder = byte_remainder_function(polynomial ^ (1 << m), m)
        self._parity_bytes = (n + 7) // 8
        self._parity_lanes: Optional[List[bytes]] = None  # built on first bulk use

    # -- construction -----------------------------------------------------

    def _build_syndrome_table(self) -> SyndromeTable:
        """Precompute syndrome → error-position and syndrome → mask tables.

        Position ``i`` has syndrome ``x**i mod g(x)``; iterating the
        multiplication by ``x`` avoids recomputing full divisions.  The
        construction fails loudly if two positions collide, which would mean
        the polynomial is not primitive and cannot support a Hamming code of
        this length.
        """
        positions: List[Optional[int]] = [None] * (1 << self._m)
        masks = [0] * (1 << self._m)
        syndrome = 1  # x^0 mod g
        for position in range(self._n):
            if syndrome == 0:
                raise CodingError(
                    f"polynomial 0x{self._full_polynomial:X} divides x^{position}; "
                    "not a valid Hamming generator"
                )
            if positions[syndrome] is not None:
                raise CodingError(
                    f"polynomial 0x{self._full_polynomial:X} is not primitive: "
                    f"positions {positions[syndrome]} and {position} share syndrome "
                    f"{syndrome:#x}"
                )
            positions[syndrome] = position
            masks[syndrome] = 1 << position
            syndrome = poly_mod(syndrome << 1, self._full_polynomial)
        return SyndromeTable(
            order=self._m, positions=tuple(positions), masks=tuple(masks)
        )

    # -- simple accessors ---------------------------------------------------

    @property
    def m(self) -> int:
        """Parity width (syndrome width) in bits."""
        return self._m

    @property
    def n(self) -> int:
        """Code length in bits (``2**m - 1``)."""
        return self._n

    @property
    def k(self) -> int:
        """Message (basis) length in bits (``n - m``)."""
        return self._k

    @property
    def full_polynomial(self) -> int:
        """Generator polynomial including the leading term."""
        return self._full_polynomial

    @property
    def crc_parameter(self) -> int:
        """Polynomial with the leading term stripped (Tofino CRC parameter)."""
        return self._full_polynomial ^ (1 << self._m)

    @property
    def crc_engine(self) -> CrcEngine:
        """The plain-remainder CRC engine used for syndrome computation."""
        return self._crc

    @property
    def syndrome_table(self) -> SyndromeTable:
        """The syndrome → error-position lookup table."""
        return self._syndrome_table

    @property
    def error_masks(self) -> Tuple[int, ...]:
        """The n-bit XOR masks indexed by syndrome (``error_mask`` sans checks)."""
        return self._error_masks

    @property
    def byte_remainder(self):
        """Fused ``remainder(data) -> int`` over raw bytes (syndrome mode).

        Equals :meth:`syndrome` of the integer the bytes spell, for any
        byte-aligned buffer whose value fits in ``n`` bits; the fast paths
        bind this closure locally instead of calling :meth:`syndrome` per
        chunk.
        """
        return self._byte_remainder

    def parity_of_basis_fast(self, basis: int) -> int:
        """Unchecked :meth:`parity_of_basis` (decode-direction hot path).

        Serialises ``basis * x**m`` to a fixed ``ceil(n / 8)`` bytes (leading
        zeros do not change a remainder) and reduces it through the fused
        byte loop.
        """
        return self._byte_remainder((basis << self._m).to_bytes(self._parity_bytes, "big"))

    def parities_of_bases(
        self, bases: Sequence[int], backend=None
    ) -> Sequence[int]:
        """Parity bits of many bases in one bulk pass (decode hot path).

        For orders up to 8 the parities of the whole batch come out of the
        C-speed lane reduction (serialise every ``basis * x**m`` into one
        buffer, translate its byte lanes, XOR them together); wider orders
        fall back to the per-basis fused loop.  Element ``i`` equals
        :meth:`parity_of_basis` of ``bases[i]``.

        ``backend`` optionally names an accelerated
        :class:`~repro.core.backends.CodecBackend` (the decoder passes its
        transform's); large batches it supports then fold through ndarray
        gathers instead of the byte-lane loop, bit-identically.
        """
        if (
            backend is not None
            and backend.accelerated
            and len(bases) >= _MIN_BACKEND_BASES
            and backend.supports_parity(self)
        ):
            return backend.parities_of_bases(self, bases)
        if self._m > 8:
            fast = self.parity_of_basis_fast
            return [fast(basis) for basis in bases]
        if not bases:
            return b""
        length = self._parity_bytes
        m = self._m
        buffer = b"".join((basis << m).to_bytes(length, "big") for basis in bases)
        lanes = self._parity_lanes
        if lanes is None:
            lanes = self._parity_lanes = list(
                lane_tables(self.crc_parameter, m, length)
            )
        accumulator = 0
        from_bytes = int.from_bytes
        for position, lane_table in enumerate(lanes):
            accumulator ^= from_bytes(
                buffer[position::length].translate(lane_table), "big"
            )
        return accumulator.to_bytes(len(bases), "big")

    def __repr__(self) -> str:
        return (
            f"HammingCode(n={self._n}, k={self._k}, m={self._m}, "
            f"polynomial=0x{self._full_polynomial:X})"
        )

    # -- syndromes ----------------------------------------------------------

    def syndrome(self, chunk: int) -> int:
        """Syndrome of an ``n``-bit chunk (step ➋ of Figure 1)."""
        self._check_chunk(chunk)
        return self._crc.compute_bits(chunk, self._n)

    def syndrome_of_error_position(self, position: int) -> int:
        """Syndrome produced by a single-bit error at ``position``."""
        if not 0 <= position < self._n:
            raise CodingError(
                f"error position {position} out of range for n={self._n}"
            )
        return self._crc.compute_bits(1 << position, self._n)

    def error_position(self, syndrome: int) -> Optional[int]:
        """Bit position matching ``syndrome``, or ``None`` for syndrome 0."""
        return self._syndrome_table.position_for(syndrome)

    def error_mask(self, syndrome: int) -> int:
        """XOR mask matching ``syndrome`` (step ➌/➍ of Figure 1)."""
        return self._syndrome_table.mask_for(syndrome)

    # -- GD transformation (basis / deviation split) -------------------------

    def chunk_to_basis(self, chunk: int) -> Tuple[int, int]:
        """Split an ``n``-bit chunk into ``(basis, syndrome)``.

        This is the encoding workflow of Figure 1: compute the syndrome,
        flip the deviated bit to land on a codeword, keep the ``k`` message
        bits of that codeword as the basis and the syndrome as the deviation.
        """
        self._check_chunk(chunk)
        syndrome = self._crc.compute_bits(chunk, self._n)
        codeword = chunk ^ self._syndrome_table.mask_for(syndrome)
        basis = codeword >> self._m
        return basis, syndrome

    def basis_to_chunk(self, basis: int, syndrome: int) -> int:
        """Rebuild the original ``n``-bit chunk from ``(basis, syndrome)``.

        This is the decoding workflow of Figure 2: recompute the parity bits
        of the basis with the same CRC, concatenate, and flip the deviated
        bit back.
        """
        self._check_basis(basis)
        self._check_syndrome(syndrome)
        parity = self.parity_of_basis(basis)
        codeword = (basis << self._m) | parity
        return codeword ^ self._syndrome_table.mask_for(syndrome)

    def parity_of_basis(self, basis: int) -> int:
        """Parity bits of a ``k``-bit basis (step ➍ of Figure 2).

        Equals the augmented CRC of the basis — i.e. the remainder of
        ``basis(x) * x**m`` — which is what feeding the zero-padded basis
        through the switch CRC unit computes.  Uses the shared lookup table
        (this is the decode-direction hot path, a 247-bit division per
        chunk for the paper's parameters).
        """
        self._check_basis(basis)
        return poly_mod_table(basis << self._m, self.crc_parameter, self._m)

    # -- classic codeword operations ------------------------------------------

    def encode(self, message: int) -> int:
        """Systematically encode a ``k``-bit message into an ``n``-bit codeword."""
        self._check_basis(message)
        return (message << self._m) | self.parity_of_basis(message)

    def is_codeword(self, value: int) -> bool:
        """True when ``value`` is a codeword (zero syndrome)."""
        self._check_chunk(value)
        return self._crc.compute_bits(value, self._n) == 0

    def correct(self, received: int) -> Tuple[int, Optional[int]]:
        """Correct at most one bit error in ``received``.

        Returns ``(corrected_word, flipped_position)`` where the position is
        ``None`` when the word was already a codeword.  Not used by ZipLine
        itself but exercised by the test suite to validate the code algebra.
        """
        self._check_chunk(received)
        syndrome = self._crc.compute_bits(received, self._n)
        if syndrome == 0:
            return received, None
        position = self._syndrome_table.position_for(syndrome)
        if position is None:
            raise CodingError(f"syndrome {syndrome:#x} has no registered position")
        return received ^ (1 << position), position

    def extract_message(self, codeword: int) -> int:
        """Message (high ``k``) bits of a codeword."""
        self._check_chunk(codeword)
        return codeword >> self._m

    # -- matrices (for validation and documentation) ----------------------------

    def parity_check_matrix(self) -> List[List[int]]:
        """Parity-check matrix ``H`` as ``m`` rows of ``n`` bits.

        Column ``j`` (counting from the left, i.e. from the coefficient of
        ``x**(n-1)``) is the syndrome of a single-bit error at position
        ``n - 1 - j``, matching the paper's ``CRC(B) = B @ H^T`` formulation.
        """
        columns = [
            self.syndrome_of_error_position(self._n - 1 - j) for j in range(self._n)
        ]
        return [
            [(column >> (self._m - 1 - row)) & 1 for column in columns]
            for row in range(self._m)
        ]

    def generator_matrix(self) -> List[List[int]]:
        """Systematic generator matrix ``G_s`` as ``k`` rows of ``n`` bits.

        Row ``i`` is the codeword of the unit message with bit ``k - 1 - i``
        set, so ``G_s`` is in the ``[I_k | P]``-with-message-high form used
        throughout this implementation.
        """
        rows = []
        for i in range(self._k):
            message = 1 << (self._k - 1 - i)
            codeword = self.encode(message)
            rows.append([(codeword >> (self._n - 1 - j)) & 1 for j in range(self._n)])
        return rows

    def syndrome_via_matrix(self, chunk: int) -> int:
        """Compute a syndrome by explicit matrix multiplication (slow path).

        Used in tests to confirm the CRC shortcut equals ``B @ H^T``.
        """
        self._check_chunk(chunk)
        matrix = self.parity_check_matrix()
        bits = [(chunk >> (self._n - 1 - j)) & 1 for j in range(self._n)]
        syndrome = 0
        for row in range(self._m):
            accumulator = 0
            for j in range(self._n):
                accumulator ^= matrix[row][j] & bits[j]
            syndrome = (syndrome << 1) | accumulator
        return syndrome

    # -- validation helpers --------------------------------------------------

    def _check_chunk(self, chunk: int) -> None:
        if chunk < 0:
            raise CodingError(f"chunk must be non-negative, got {chunk}")
        if chunk >> self._n:
            raise CodingError(f"chunk {chunk:#x} does not fit in n={self._n} bits")

    def _check_basis(self, basis: int) -> None:
        if basis < 0:
            raise CodingError(f"basis must be non-negative, got {basis}")
        if basis >> self._k:
            raise CodingError(f"basis {basis:#x} does not fit in k={self._k} bits")

    def _check_syndrome(self, syndrome: int) -> None:
        if syndrome < 0:
            raise CodingError(f"syndrome must be non-negative, got {syndrome}")
        if syndrome >> self._m:
            raise CodingError(
                f"syndrome {syndrome:#x} does not fit in m={self._m} bits"
            )

    # -- convenience --------------------------------------------------------

    def chunk_vector_to_basis(self, chunk: BitVector) -> Tuple[BitVector, BitVector]:
        """BitVector variant of :meth:`chunk_to_basis`."""
        if chunk.width != self._n:
            raise CodingError(
                f"chunk width {chunk.width} does not match n={self._n}"
            )
        basis, syndrome = self.chunk_to_basis(chunk.value)
        return BitVector(basis, self._k), BitVector(syndrome, self._m)

    def basis_vector_to_chunk(self, basis: BitVector, syndrome: BitVector) -> BitVector:
        """BitVector variant of :meth:`basis_to_chunk`."""
        if basis.width != self._k:
            raise CodingError(f"basis width {basis.width} does not match k={self._k}")
        if syndrome.width != self._m:
            raise CodingError(
                f"syndrome width {syndrome.width} does not match m={self._m}"
            )
        return BitVector(self.basis_to_chunk(basis.value, syndrome.value), self._n)

    def bases_sharing_chunk(self, basis: int) -> int:
        """Number of distinct chunks that map to the given basis (= ``n + 1``).

        Every basis absorbs the codeword itself plus the ``n`` single-bit
        deviations, exactly the clustering property motivating GD.
        """
        self._check_basis(basis)
        return self._n + 1
