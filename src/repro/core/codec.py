"""High-level GD codec: compress / decompress byte streams in one call.

:class:`GDCodec` is the laptop-level entry point of the library — the piece a
downstream user reaches for when they want the paper's compression algorithm
without the switch model.  It wires together a transform, an encoder-side
dictionary and a decoder-side dictionary, offers ``compress`` /
``decompress`` over byte strings, and can serialise the compressed stream to
a simple self-describing container (useful for files, and used by the gzip
comparison in the Figure 3 benchmark).

The container format is deliberately simple:

* a 16-byte header: magic ``GDZ1``, Hamming order, chunk bits, identifier
  bits, flags, and the number of records;
* each record as a 1-byte type tag (2 or 3) followed by the record payload,
  byte aligned.

Everything needed to decompress is in the header, so a file compressed on
one machine can be decompressed on another with no shared state.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro import obs as _obs
from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.core.decoder import GDDecoder
from repro.core.encoder import EncodedBatch, EncoderMode, GDEncoder
from repro.core.records import (
    CompressedRecord,
    GDRecord,
    RecordType,
    UncompressedRecord,
)
from repro.core.transform import GDTransform
from repro.exceptions import ChunkSizeError, CodingError

__all__ = [
    "CompressionResult",
    "GDCodec",
    "CONTAINER_MAGIC",
    "CONTAINER_HEADER",
    "FLAG_STREAMED",
]

_MAGIC = b"GDZ1"
# magic, order, chunk_bits, id_bits, flags, records, alignment_padding_bits.
# The padding byte sits in what used to be reserved-zero space, so headers
# written by earlier versions (always padding 0) parse identically.
_HEADER = struct.Struct(">4sBHBBIBxx")

#: Public aliases used by the streaming engine (:mod:`repro.core.engine`).
CONTAINER_MAGIC = _MAGIC
CONTAINER_HEADER = _HEADER

#: Header flag: the record count field is 0 and records run until an
#: end-of-stream tag (0x00) followed by the 8-byte original length — the
#: layout the incremental container writer produces.
FLAG_STREAMED = 0x01


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing a byte string with :class:`GDCodec`.

    Attributes
    ----------
    records:
        The emitted GD records in order.
    original_bytes:
        Size of the input.
    payload_bytes:
        Sum of the padded record payloads — what would travel on the wire as
        ZipLine packet payloads (no container overhead).
    container_bytes:
        Size of the serialised container produced by :meth:`GDCodec.to_container`
        (includes the header and the per-record type tags).
    """

    records: Tuple[GDRecord, ...]
    original_bytes: int
    payload_bytes: int
    container_bytes: int

    @property
    def compression_ratio(self) -> float:
        """Payload bytes over original bytes (the paper's Figure 3 metric)."""
        if self.original_bytes == 0:
            return 0.0
        return self.payload_bytes / self.original_bytes

    @property
    def container_ratio(self) -> float:
        """Container bytes over original bytes (fair comparison with gzip files)."""
        if self.original_bytes == 0:
            return 0.0
        return self.container_bytes / self.original_bytes

    @property
    def compressed_record_fraction(self) -> float:
        """Fraction of records that were emitted as compressed (type 3)."""
        if not self.records:
            return 0.0
        compressed = sum(
            1 for record in self.records if record.record_type is RecordType.COMPRESSED
        )
        return compressed / len(self.records)


class GDCodec:
    """Byte-stream compressor/decompressor built on generalized deduplication.

    Parameters
    ----------
    order:
        Hamming order ``m`` (the paper uses 8).
    chunk_bits:
        Chunk width; defaults to the smallest byte multiple ≥ ``2**order - 1``.
    identifier_bits:
        Identifier width ``t``; the dictionary holds ``2**t`` bases (the paper
        uses 15).
    mode:
        ``dynamic`` (default), ``static`` or ``no_table``.
    eviction_policy:
        Dictionary replacement policy (LRU by default, as in the paper).
    alignment_padding_bits:
        Extra bits added to type-2 payloads to model the hardware container
        alignment (8 in the paper).  Set to 0 for the pure software codec.
    static_bases:
        Iterable of basis values to preload when ``mode="static"``.
    eviction_seed:
        Seed for the dictionaries' eviction randomness.  Only the ``random``
        policy draws from it; passing a seed makes ablation runs
        reproducible.  Encoder and decoder dictionaries always share one
        seed — when none is given and the policy is ``random``, a seed is
        sampled once so both sides still evict in lock-step (required for
        lossless round trips under dictionary pressure).
    backend:
        Codec-backend selection forwarded to
        :class:`~repro.core.transform.GDTransform`: a registered backend
        name, or ``None`` for the documented precedence
        (``REPRO_GD_BACKEND``, then best available).  Backends are
        bit-identical; this only affects batch throughput.
    """

    def __init__(
        self,
        order: int = 8,
        chunk_bits: Optional[int] = None,
        identifier_bits: int = 15,
        mode: "str | EncoderMode" = EncoderMode.DYNAMIC,
        eviction_policy: "str | EvictionPolicy" = EvictionPolicy.LRU,
        alignment_padding_bits: int = 0,
        static_bases: Optional[Iterable[int]] = None,
        learning_delay_chunks: int = 0,
        eviction_seed: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if identifier_bits <= 0:
            raise CodingError(f"identifier_bits must be positive, got {identifier_bits}")
        if not 0 <= alignment_padding_bits <= 255:
            raise CodingError(
                f"alignment_padding_bits must be in 0..255, got {alignment_padding_bits}"
            )
        self._backend = backend
        self._transform = GDTransform(
            order=order, chunk_bits=chunk_bits, backend=backend
        )
        self._identifier_bits = identifier_bits
        self._mode = EncoderMode.from_name(mode)
        self._eviction_policy = EvictionPolicy.from_name(eviction_policy)
        self._alignment_padding_bits = alignment_padding_bits
        self._learning_delay_chunks = learning_delay_chunks
        self._static_bases = list(static_bases) if static_bases is not None else None
        if eviction_seed is None and self._eviction_policy is EvictionPolicy.RANDOM:
            # Both dictionaries must draw the same eviction sequence or the
            # decoder resolves identifiers to the wrong bases once the
            # dictionary fills; sample one seed and share it.
            eviction_seed = random.randrange(1 << 63)
        self._eviction_seed = eviction_seed

        capacity = 1 << identifier_bits
        self._encoder_dictionary: Optional[BasisDictionary] = None
        self._decoder_dictionary: Optional[BasisDictionary] = None
        if self._mode is not EncoderMode.NO_TABLE:
            self._encoder_dictionary = BasisDictionary(
                capacity, eviction_policy, seed=eviction_seed
            )
            self._decoder_dictionary = BasisDictionary(
                capacity, eviction_policy, seed=eviction_seed
            )
            if self._mode is EncoderMode.STATIC:
                if self._static_bases is None:
                    raise CodingError("static mode requires static_bases")
                self._encoder_dictionary.preload(iter(self._static_bases))
                self._decoder_dictionary.preload(iter(self._static_bases))

        self._encoder = GDEncoder(
            self._transform,
            self._encoder_dictionary,
            mode=self._mode,
            identifier_bits=identifier_bits,
            alignment_padding_bits=alignment_padding_bits,
            learning_delay_chunks=learning_delay_chunks,
        )
        self._decoder = GDDecoder(
            self._transform,
            self._decoder_dictionary,
            learn_from_uncompressed=self._mode is not EncoderMode.NO_TABLE,
        )

    # -- accessors -------------------------------------------------------------

    @property
    def transform(self) -> GDTransform:
        """The underlying GD transformation."""
        return self._transform

    @property
    def encoder(self) -> GDEncoder:
        """The encoder half of the codec."""
        return self._encoder

    @property
    def decoder(self) -> GDDecoder:
        """The decoder half of the codec."""
        return self._decoder

    @property
    def chunk_bytes(self) -> int:
        """Chunk size in bytes."""
        return self._transform.chunk_bytes

    @property
    def identifier_bits(self) -> int:
        """Identifier width in bits."""
        return self._identifier_bits

    # -- chunking ---------------------------------------------------------------

    def _padded(self, data: bytes, pad: bool) -> bytes:
        """``data`` zero-padded to a whole number of chunks.

        Without ``pad``, a ragged length raises instead (the paper's traces
        are always exact chunk multiples).
        """
        size = self.chunk_bytes
        if len(data) % size:
            if not pad:
                raise ChunkSizeError(
                    f"data length {len(data)} is not a multiple of the chunk size "
                    f"{size}; pass pad=True to zero-pad the final chunk"
                )
            data = data + b"\x00" * (size - len(data) % size)
        return data

    def chunk_data(self, data: bytes, pad: bool = False) -> List[bytes]:
        """Split ``data`` into codec-sized chunks.

        When ``pad`` is true a short final chunk is zero-padded on the right;
        the original length is restored by :meth:`decompress` via the header,
        so padding is safe for container round trips.
        """
        data = self._padded(data, pad)
        size = self.chunk_bytes
        return [data[offset : offset + size] for offset in range(0, len(data), size)]

    # -- compression -------------------------------------------------------------

    def compress(self, data: bytes, pad: bool = False) -> CompressionResult:
        """Compress a byte string into GD records.

        The records come back as a lazily materialised
        :class:`~repro.core.encoder.EncodedBatch` when possible (tracing
        forces the eager per-record path); both shapes compare equal and
        serialise identically.
        """
        padded_bits_before = self._encoder.stats.output_padded_bits
        buffer = self._padded(data, pad)
        records = self._encoder.encode_buffer_batch(buffer)
        if records is None:
            records = tuple(self._encoder.encode_buffer(buffer))
        # Padded record payloads are byte aligned, so the wire volume is the
        # encoder's padded-bit delta — no per-record property walk needed.
        payload_bytes = (
            self._encoder.stats.output_padded_bits - padded_bits_before
        ) // 8
        # Container layout: fixed header, 8-byte original length, then one
        # type tag plus the payload per record (see ``to_container``).
        container_bytes = _HEADER.size + 8 + len(records) + payload_bytes
        return CompressionResult(
            records=records,
            original_bytes=len(data),
            payload_bytes=payload_bytes,
            container_bytes=container_bytes,
        )

    def decompress_records(
        self, records: Iterable[GDRecord], original_bytes: Optional[int] = None
    ) -> bytes:
        """Decode records back into the original byte string."""
        data = self._decoder.decode_to_bytes(records)
        if original_bytes is not None:
            data = data[:original_bytes]
        return data

    # -- container serialisation ------------------------------------------------------

    def container_header(self, record_count: int = 0, streamed: bool = False) -> bytes:
        """The 16-byte ``GDZ1`` header for this codec's parameters."""
        return _HEADER.pack(
            _MAGIC,
            self._transform.order,
            self._transform.chunk_bits,
            self._identifier_bits,
            FLAG_STREAMED if streamed else 0,
            record_count,
            self._alignment_padding_bits,
        )

    def to_container(self, result: CompressionResult) -> bytes:
        """Serialise a compression result into the ``GDZ1`` container format."""
        header = self.container_header(record_count=len(result.records))
        records = result.records
        if isinstance(records, EncodedBatch):
            # Columnar batch: the body is packed straight from the field
            # columns (vectorized when numpy is present), byte-identical to
            # the per-record loop below.
            return (
                header + struct.pack(">Q", result.original_bytes) + records.pack_stream()
            )
        parts: List[bytes] = [header, struct.pack(">Q", result.original_bytes)]
        for record in records:
            parts.append(bytes([int(record.record_type)]))
            parts.append(record.to_bytes())
        return b"".join(parts)

    def clone(self) -> "GDCodec":
        """A new codec with the same parameters and empty dictionaries."""
        return GDCodec(
            order=self._transform.order,
            chunk_bits=self._transform.chunk_bits,
            identifier_bits=self._identifier_bits,
            mode=self._mode,
            eviction_policy=self._eviction_policy,
            alignment_padding_bits=self._alignment_padding_bits,
            static_bases=self._static_bases,
            learning_delay_chunks=self._learning_delay_chunks,
            eviction_seed=self._eviction_seed,
            backend=self._backend,
        )

    def compress_to_container(self, data: bytes, pad: bool = True) -> bytes:
        """Compress and serialise into a self-contained container.

        A fresh encoder state is used so that every basis referenced by a
        type-3 record is introduced by an earlier type-2 record inside the
        same container — the container can then be decompressed with no
        shared state, regardless of what this codec compressed before.
        """
        fresh = self.clone()
        return fresh.to_container(fresh.compress(data, pad=pad))

    @classmethod
    def from_container_header(cls, blob: bytes) -> "GDCodec":
        """Build a codec matching the parameters stored in a container."""
        if len(blob) < _HEADER.size:
            raise CodingError("container too short to hold a header")
        magic, order, chunk_bits, identifier_bits, _flags, _count, padding = (
            _HEADER.unpack(blob[: _HEADER.size])
        )
        if magic != _MAGIC:
            raise CodingError(f"bad container magic {magic!r}")
        return cls(
            order=order,
            chunk_bits=chunk_bits,
            identifier_bits=identifier_bits,
            mode=EncoderMode.DYNAMIC,
            alignment_padding_bits=padding,
        )

    def decompress_container(self, blob: bytes) -> bytes:
        """Parse a ``GDZ1`` container and reconstruct the original bytes."""
        if len(blob) < _HEADER.size + 8:
            raise CodingError("container too short")
        magic, order, chunk_bits, identifier_bits, flags, count, padding = (
            _HEADER.unpack(blob[: _HEADER.size])
        )
        if magic != _MAGIC:
            raise CodingError(f"bad container magic {magic!r}")
        if flags & FLAG_STREAMED:
            raise CodingError(
                "streamed container: decode it with "
                "repro.core.engine.GDStreamCompressor.decompress_stream"
            )
        if order != self._transform.order or chunk_bits != self._transform.chunk_bits:
            raise CodingError(
                "container was produced with different GD parameters "
                f"(order {order}, chunk_bits {chunk_bits})"
            )
        if identifier_bits != self._identifier_bits:
            raise CodingError(
                f"container identifier width {identifier_bits} does not match "
                f"codec width {self._identifier_bits}"
            )
        # Header padding 0 also covers containers written before the header
        # recorded the padding width (the byte was reserved-zero); those
        # decode with the codec's own setting, exactly as they always did.
        if padding and padding != self._alignment_padding_bits:
            raise CodingError(
                f"container alignment padding {padding} does not match "
                f"codec padding {self._alignment_padding_bits}"
            )
        offset = _HEADER.size
        (original_bytes,) = struct.unpack_from(">Q", blob, offset)
        offset += 8
        # Containers are self-contained: decode with a fresh dictionary so
        # that identifiers resolve exactly as the producing encoder assigned
        # them, independent of anything this codec decoded before.
        fresh = self.clone()
        if count and not _obs.TRACER.enabled:
            # Columnar fast path: unpack the tagged records straight into
            # field columns and decode without materialising record
            # objects.  Tracing needs the per-record path for its events.
            return fresh._decompress_container_columns(
                blob, offset, count, original_bytes
            )
        records: List[GDRecord] = []
        for _ in range(count):
            record, offset = self.parse_record(blob, offset)
            records.append(record)
        return fresh.decompress_records(records, original_bytes=original_bytes)

    def _decompress_container_columns(
        self, blob: bytes, offset: int, count: int, original_bytes: int
    ) -> bytes:
        """Container body → field columns → bytes, skipping record objects.

        Parses exactly like repeated :meth:`parse_record` calls (including
        every truncation error) but keeps the fields columnar, then hands
        them to :meth:`GDDecoder.decode_columns_to_bytes` for the batched
        resolve + vectorized join.
        """
        transform = self._transform
        deviation_bits = transform.deviation_bits
        deviation_mask = (1 << deviation_bits) - 1
        basis_bits = transform.basis_bits
        basis_mask = (1 << basis_bits) - 1
        identifier_bits = self._identifier_bits
        identifier_mask = (1 << identifier_bits) - 1
        prefix_bits = transform.prefix_bits
        prefix_mask = (1 << prefix_bits) - 1
        size2 = self.record_wire_size(int(RecordType.UNCOMPRESSED))
        size3 = self.record_wire_size(int(RecordType.COMPRESSED))
        total = len(blob)
        from_bytes = int.from_bytes
        tags = bytearray(count)
        prefixes = [0] * count
        keys = [0] * count
        deviations = [0] * count
        for index in range(count):
            if offset >= total:
                raise CodingError("container truncated: missing record tag")
            tag = blob[offset]
            offset += 1
            if tag == 3:
                payload = blob[offset : offset + size3]
                if len(payload) != size3:
                    raise CodingError("container truncated: short type-3 record")
                value = from_bytes(payload, "big")
                deviations[index] = value & deviation_mask
                value >>= deviation_bits
                keys[index] = value & identifier_mask
                if prefix_bits:
                    prefixes[index] = (value >> identifier_bits) & prefix_mask
                tags[index] = 3
                offset += size3
            elif tag == 2:
                payload = blob[offset : offset + size2]
                if len(payload) != size2:
                    raise CodingError("container truncated: short type-2 record")
                value = from_bytes(payload, "big")
                deviations[index] = value & deviation_mask
                value >>= deviation_bits
                keys[index] = value & basis_mask
                if prefix_bits:
                    prefixes[index] = (value >> basis_bits) & prefix_mask
                tags[index] = 2
                offset += size2
            else:
                raise CodingError(f"unknown record tag {tag} at offset {offset - 1}")
        data = self._decoder.decode_columns_to_bytes(tags, prefixes, keys, deviations)
        return data[:original_bytes]

    def parse_record(self, blob: bytes, offset: int) -> Tuple[GDRecord, int]:
        """Parse one tagged record from a container blob.

        Returns ``(record, next_offset)``; raises :class:`CodingError` when
        the blob is truncated.  The streaming container reader in
        :mod:`repro.core.engine` uses this with its own buffering, checking
        :meth:`record_wire_size` first so a short buffer means "wait for
        more bytes" rather than an error.
        """
        if offset >= len(blob):
            raise CodingError("container truncated: missing record tag")
        tag = blob[offset]
        offset += 1
        transform = self._transform
        if tag == int(RecordType.UNCOMPRESSED):
            size = self.record_wire_size(tag)
            payload = blob[offset : offset + size]
            if len(payload) != size:
                raise CodingError("container truncated: short type-2 record")
            value = int.from_bytes(payload, "big")
            deviation = value & ((1 << transform.deviation_bits) - 1)
            value >>= transform.deviation_bits
            basis = value & ((1 << transform.basis_bits) - 1)
            value >>= transform.basis_bits
            prefix = value & ((1 << transform.prefix_bits) - 1) if transform.prefix_bits else 0
            record: GDRecord = UncompressedRecord(
                prefix=prefix,
                basis=basis,
                deviation=deviation,
                prefix_bits=transform.prefix_bits,
                basis_bits=transform.basis_bits,
                deviation_bits=transform.deviation_bits,
                alignment_padding_bits=self._encoder.alignment_padding_bits,
            )
            return record, offset + size
        if tag == int(RecordType.COMPRESSED):
            size = self.record_wire_size(tag)
            payload = blob[offset : offset + size]
            if len(payload) != size:
                raise CodingError("container truncated: short type-3 record")
            value = int.from_bytes(payload, "big")
            deviation = value & ((1 << transform.deviation_bits) - 1)
            value >>= transform.deviation_bits
            identifier = value & ((1 << self._identifier_bits) - 1)
            value >>= self._identifier_bits
            prefix = value & ((1 << transform.prefix_bits) - 1) if transform.prefix_bits else 0
            record = CompressedRecord(
                prefix=prefix,
                identifier=identifier,
                deviation=deviation,
                prefix_bits=transform.prefix_bits,
                identifier_bits=self._identifier_bits,
                deviation_bits=transform.deviation_bits,
            )
            return record, offset + size
        raise CodingError(f"unknown record tag {tag} at offset {offset - 1}")

    def record_wire_size(self, tag: int) -> int:
        """Payload bytes that follow a record tag in the container encoding."""
        transform = self._transform
        if tag == int(RecordType.UNCOMPRESSED):
            total_bits = (
                transform.prefix_bits
                + transform.basis_bits
                + transform.deviation_bits
                + self._encoder.alignment_padding_bits
            )
        elif tag == int(RecordType.COMPRESSED):
            total_bits = (
                transform.prefix_bits + self._identifier_bits + transform.deviation_bits
            )
        else:
            raise CodingError(f"unknown record tag {tag}")
        return (total_bits + 7) // 8

    def roundtrip(self, data: bytes, pad: bool = True) -> bytes:
        """Compress then decompress ``data`` (used heavily by tests)."""
        result = self.compress(data, pad=pad)
        return self.decompress_records(result.records, original_bytes=len(data))

    def compression_ratio(self, data: bytes, pad: bool = True) -> float:
        """Shortcut returning only the payload compression ratio for ``data``."""
        return self.compress(data, pad=pad).compression_ratio
