"""Record types produced by the GD encoder.

The paper defines three packet types (Section 5):

* **type 1** — a regular, unprocessed packet (the raw chunk);
* **type 2** — processed but uncompressed: the chunk replaced by its
  (prefix, basis, deviation) decomposition;
* **type 3** — processed and compressed: the basis replaced by a short
  identifier.

At the library (non-switch) level these are represented by
:class:`RawRecord`, :class:`UncompressedRecord` and :class:`CompressedRecord`.
Each record knows its exact payload size in bits, both unpadded (the
information-theoretic size) and padded to byte alignment (what actually goes
on the wire once the Tofino byte-alignment constraint applies — the source of
the paper's 3 % "no table" overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple, Union

from repro.core.bits import align_up, bits_to_bytes_len, int_to_bytes
from repro.exceptions import CodingError

__all__ = [
    "RecordType",
    "RawRecord",
    "UncompressedRecord",
    "CompressedRecord",
    "GDRecord",
]


class RecordType(IntEnum):
    """Numeric tags matching the paper's packet-type terminology."""

    RAW = 1
    UNCOMPRESSED = 2
    COMPRESSED = 3


@dataclass(frozen=True)
class RawRecord:
    """A type-1 record: the chunk travels untouched."""

    chunk: int
    chunk_bits: int

    def __post_init__(self) -> None:
        if self.chunk < 0 or self.chunk >> self.chunk_bits:
            raise CodingError(
                f"chunk {self.chunk:#x} does not fit in {self.chunk_bits} bits"
            )

    @property
    def record_type(self) -> RecordType:
        return RecordType.RAW

    @property
    def payload_bits(self) -> int:
        """Unpadded payload size in bits."""
        return self.chunk_bits

    @property
    def padded_bits(self) -> int:
        """Payload size after byte alignment."""
        return align_up(self.chunk_bits, 8)

    @property
    def payload_bytes(self) -> int:
        """Payload size in whole bytes."""
        return bits_to_bytes_len(self.chunk_bits)

    def to_bytes(self) -> bytes:
        """Serialise the payload (big-endian, byte aligned)."""
        return int_to_bytes(self.chunk, self.chunk_bits)


@dataclass(frozen=True)
class UncompressedRecord:
    """A type-2 record: (prefix, basis, deviation) with no dictionary hit."""

    prefix: int
    basis: int
    deviation: int
    prefix_bits: int
    basis_bits: int
    deviation_bits: int
    alignment_padding_bits: int = 0

    def __post_init__(self) -> None:
        if self.prefix < 0 or self.prefix >> self.prefix_bits:
            raise CodingError(
                f"prefix {self.prefix:#x} does not fit in {self.prefix_bits} bits"
            )
        if self.basis < 0 or self.basis >> self.basis_bits:
            raise CodingError(
                f"basis {self.basis:#x} does not fit in {self.basis_bits} bits"
            )
        if self.deviation < 0 or self.deviation >> self.deviation_bits:
            raise CodingError(
                f"deviation {self.deviation:#x} does not fit in "
                f"{self.deviation_bits} bits"
            )
        if self.alignment_padding_bits < 0:
            raise CodingError("alignment padding cannot be negative")

    @property
    def record_type(self) -> RecordType:
        return RecordType.UNCOMPRESSED

    @property
    def dedup_key(self) -> int:
        """The basis value that identifies the dictionary entry."""
        return self.basis

    @property
    def payload_bits(self) -> int:
        """Information-theoretic payload size (no padding)."""
        return self.prefix_bits + self.basis_bits + self.deviation_bits

    @property
    def padded_bits(self) -> int:
        """Wire payload size: fields plus explicit padding, byte aligned."""
        return align_up(self.payload_bits + self.alignment_padding_bits, 8)

    @property
    def payload_bytes(self) -> int:
        """Wire payload size in bytes."""
        return self.padded_bits // 8

    def to_bytes(self) -> bytes:
        """Serialise prefix | basis | deviation, left-padded to byte alignment."""
        value = (
            ((self.prefix << self.basis_bits) | self.basis) << self.deviation_bits
        ) | self.deviation
        return int_to_bytes(value, self.padded_bits)


@dataclass(frozen=True)
class CompressedRecord:
    """A type-3 record: the basis is replaced by a short identifier."""

    prefix: int
    identifier: int
    deviation: int
    prefix_bits: int
    identifier_bits: int
    deviation_bits: int
    alignment_padding_bits: int = 0

    def __post_init__(self) -> None:
        if self.prefix < 0 or self.prefix >> self.prefix_bits:
            raise CodingError(
                f"prefix {self.prefix:#x} does not fit in {self.prefix_bits} bits"
            )
        if self.identifier < 0 or self.identifier >> self.identifier_bits:
            raise CodingError(
                f"identifier {self.identifier} does not fit in "
                f"{self.identifier_bits} bits"
            )
        if self.deviation < 0 or self.deviation >> self.deviation_bits:
            raise CodingError(
                f"deviation {self.deviation:#x} does not fit in "
                f"{self.deviation_bits} bits"
            )
        if self.alignment_padding_bits < 0:
            raise CodingError("alignment padding cannot be negative")

    @property
    def record_type(self) -> RecordType:
        return RecordType.COMPRESSED

    @property
    def payload_bits(self) -> int:
        """Information-theoretic payload size (no padding)."""
        return self.prefix_bits + self.identifier_bits + self.deviation_bits

    @property
    def padded_bits(self) -> int:
        """Wire payload size: fields plus explicit padding, byte aligned."""
        return align_up(self.payload_bits + self.alignment_padding_bits, 8)

    @property
    def payload_bytes(self) -> int:
        """Wire payload size in bytes."""
        return self.padded_bits // 8

    def to_bytes(self) -> bytes:
        """Serialise prefix | identifier | deviation, byte aligned."""
        value = (
            ((self.prefix << self.identifier_bits) | self.identifier)
            << self.deviation_bits
        ) | self.deviation
        return int_to_bytes(value, self.padded_bits)


GDRecord = Union[RawRecord, UncompressedRecord, CompressedRecord]
