"""The ``pure`` codec backend: the fused byte-lane path, always available.

This backend is a thin adapter over the in-process fast paths that already
live on :class:`~repro.core.transform.GDTransform` and
:class:`~repro.core.hamming.HammingCode` — ``bytes.translate`` lane
reduction for syndromes/parities, big-integer XOR folds, one table lookup
per chunk.  It exists so every batch entry point has a uniform backend
object to dispatch through and so the other backends have a reference to
fall back to (and be property-tested against).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.backends import BatchSplit, CodecBackend

__all__ = ["PureBackend"]


class PureBackend(CodecBackend):
    """Reference backend built on the pure-Python fused fast paths."""

    name = "pure"
    priority = 10
    accelerated = False

    def availability_detail(self) -> str:
        return "pure-Python fused byte-lane path (always available)"

    def split_batch_fields(self, transform, data) -> List[Tuple[int, int, int]]:
        return transform._split_batch_fields_local(data)

    def split_batch_columns(self, transform, data) -> BatchSplit:
        return BatchSplit.from_fields(
            transform._split_batch_fields_local(data), backend=self.name
        )

    def parities_of_bases(self, code, bases: Sequence[int]) -> Sequence[int]:
        return code.parities_of_bases(bases)

    def join_batch_to_bytes(
        self,
        transform,
        prefixes: Sequence[int],
        bases: Sequence[int],
        deviations: Sequence[int],
    ) -> bytes:
        return transform._join_batch_to_bytes_local(prefixes, bases, deviations)
