"""The ``native`` codec backend slot: reserved for a compiled extension.

The ROADMAP's end state for the hot paths is a Cython/C (or SIMD) kernel
computing whole-buffer syndromes the way a hardware CRC engine folds a
word per clock.  Nothing compiled ships yet; this stub keeps the name,
priority and registry slot stable so that

* ``repro codecs --backends`` shows the slot and why it is unavailable,
* selecting it (``REPRO_GD_BACKEND=native``) fails with an actionable
  message instead of a ``KeyError``,
* a real implementation can take over with
  ``register_backend(RealNativeBackend(), replace=True)`` and immediately
  win auto-selection (its priority outranks ``numpy``).

See ``docs/backends.md`` for the contract a replacement must satisfy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.backends import BatchSplit, CodecBackend
from repro.exceptions import BackendError

__all__ = ["NativeBackend"]

_DETAIL = (
    "placeholder slot: no compiled extension is built yet "
    "(see docs/backends.md for how to provide one)"
)


class NativeBackend(CodecBackend):
    """Unavailable placeholder for a future compiled backend."""

    name = "native"
    priority = 30
    accelerated = True

    def available(self) -> bool:
        return False

    def availability_detail(self) -> str:
        return _DETAIL

    def _unavailable(self) -> BackendError:
        return BackendError(f"codec backend 'native' is not available: {_DETAIL}")

    def supports_transform(self, transform) -> bool:
        return False

    def supports_parity(self, code) -> bool:
        return False

    def supports_join(self, transform) -> bool:
        return False

    def supports_crc_batch(self, parameters) -> bool:
        return False

    def split_batch_fields(self, transform, data) -> List[Tuple[int, int, int]]:
        raise self._unavailable()

    def split_batch_columns(self, transform, data) -> BatchSplit:
        raise self._unavailable()

    def parities_of_bases(self, code, bases: Sequence[int]) -> Sequence[int]:
        raise self._unavailable()

    def join_batch_to_bytes(
        self,
        transform,
        prefixes: Sequence[int],
        bases: Sequence[int],
        deviations: Sequence[int],
    ) -> bytes:
        raise self._unavailable()

    def crc_batch(self, engine, data, record_bits: int) -> List[int]:
        raise self._unavailable()
