"""Pluggable codec backends for the GD batch hot paths.

The per-chunk work of the GD transformation was fused into table lookups in
the ``pure`` fast path; what remains is the per-chunk *Python* cost of the
loop itself.  A backend replaces the loop: it computes the syndromes,
bases and deviations of every chunk in a buffer with whole-buffer
primitives — the software analogue of widening a hardware CRC engine's
datapath (LiteEth unrolls the LFSR across a word and emits one XOR network
per output bit; the ``numpy`` backend unrolls it across the whole trace and
emits a handful of ndarray gathers).

Three backends are registered:

``pure``
    The existing fused byte-lane path.  Always available, and the
    reference every other backend must match bit for bit.
``numpy``
    Whole-buffer batch syndrome/parity computation via precomputed
    per-byte-lane XOR-fold tables applied as ndarray gathers, batch
    split/join over a single ``np.frombuffer`` view, vectorized deviation
    extraction.  Available only when :mod:`numpy` is importable (the
    ``fast`` optional dependency).
``native``
    A stub slot reserved for a future Cython/C extension; registering a
    real implementation replaces the stub (see ``docs/backends.md``).

Selection precedence (first match wins):

1. per-call / per-object: ``GDTransform(backend="numpy")``;
2. per-process: the ``REPRO_GD_BACKEND`` environment variable;
3. automatic: the available backend with the highest priority.

Requesting a backend that is not available raises
:class:`~repro.exceptions.BackendError` with the probe's reason, so a
misconfigured deployment fails loudly instead of silently running slow.
The registry is re-exported through :mod:`repro.registry` next to the
compressor registry.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import BackendError

__all__ = [
    "BACKEND_ENV",
    "MIN_BATCH_CHUNKS",
    "BatchSplit",
    "CodecBackend",
    "available_backend_names",
    "backend_names",
    "backend_status",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Environment switch naming the process-wide backend (selection step 2).
BACKEND_ENV = "REPRO_GD_BACKEND"

#: Batches smaller than this stay on the pure in-process loop even when an
#: accelerated backend is selected: below a few chunks the fixed cost of
#: entering the vectorized path (array views, gather set-up) exceeds the
#: whole loop, and the switch models feed single-digit batches.
MIN_BATCH_CHUNKS = 16


class BatchSplit:
    """Columnar result of a whole-buffer GD split.

    The accelerated backends naturally produce the split as parallel
    columns (a prefix array, a deviation array, the basis rows as a byte
    matrix) rather than a list of per-chunk tuples; this wrapper carries
    that representation and materialises the classic
    ``[(prefix, basis, deviation), ...]`` list lazily, so batch consumers
    that only need one column (deviation histograms, basis dedup scans)
    never pay for the rest.

    Instances compare equal when their materialised fields are equal,
    regardless of which backend produced them — the equality the property
    suite asserts across backends.
    """

    __slots__ = ("count", "backend", "_materialize", "_fields", "_columns", "_cols")

    def __init__(
        self,
        count: int,
        backend: str,
        materialize: Callable[[], List[Tuple[int, int, int]]],
        fields: Optional[List[Tuple[int, int, int]]] = None,
        columns: Optional[
            Callable[[], Tuple[List[int], List[int], List[int]]]
        ] = None,
    ):
        self.count = count
        self.backend = backend
        self._materialize = materialize
        self._fields = fields
        self._columns = columns
        self._cols: Optional[Tuple[List[int], List[int], List[int]]] = None

    @classmethod
    def from_fields(
        cls, fields: List[Tuple[int, int, int]], backend: str
    ) -> "BatchSplit":
        """Wrap an eagerly computed field list (the pure representation)."""
        return cls(len(fields), backend, lambda: fields, fields)

    def fields(self) -> List[Tuple[int, int, int]]:
        """The split as ``(prefix, basis, deviation)`` tuples (cached)."""
        if self._fields is None:
            if self._cols is not None:
                prefixes, bases, deviations = self._cols
                self._fields = list(zip(prefixes, bases, deviations))
            else:
                self._fields = self._materialize()
        return self._fields

    def columns(self) -> Tuple[List[int], List[int], List[int]]:
        """The split as three parallel columns (cached).

        Accelerated backends provide a native column thunk that skips the
        per-chunk tuple zip entirely — the batched encoder consumes the
        basis column alone, which is several times cheaper than the full
        field list.
        """
        if self._cols is None:
            if self._fields is not None or self._columns is None:
                fields = self.fields()
                self._cols = (
                    [prefix for prefix, _, _ in fields],
                    [basis for _, basis, _ in fields],
                    [deviation for _, _, deviation in fields],
                )
            else:
                self._cols = self._columns()
        return self._cols

    def prefixes(self) -> List[int]:
        """The prefix column."""
        return self.columns()[0]

    def bases(self) -> List[int]:
        """The basis column (deduplication units)."""
        return self.columns()[1]

    def deviations(self) -> List[int]:
        """The deviation (syndrome) column."""
        return self.columns()[2]

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchSplit):
            return NotImplemented
        return self.fields() == other.fields()

    def __repr__(self) -> str:
        return f"BatchSplit(count={self.count}, backend={self.backend!r})"


class CodecBackend:
    """Interface every codec backend implements.

    A backend accelerates the four batch entry points the replay harness,
    topology engine and CLI funnel through: forward split
    (:meth:`split_batch_fields` / :meth:`split_batch_columns`), bulk parity
    recovery (:meth:`parities_of_bases`) and the whole-batch inverse
    (:meth:`join_batch_to_bytes`).  The ``supports_*`` predicates gate each
    operation per configuration (order, prefix width); ineligible
    configurations transparently stay on the pure path, so a backend never
    has to cover the full parameter space to be useful.

    Equivalence contract: for every configuration a backend claims support
    for, its outputs must be **bit-identical** to the reference path —
    same splits, same eviction order, same containers.  The property suite
    (``tests/core/test_backends.py``) enforces this across the full
    matrix.
    """

    #: Registry name (also the ``REPRO_GD_BACKEND`` value).
    name: str = ""
    #: Auto-selection rank; the available backend with the highest value wins.
    priority: int = 0
    #: True for backends that replace the in-process loop.  The dispatchers
    #: only leave the pure path for accelerated backends.
    accelerated: bool = False

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        """True when the backend can run in this process."""
        return True

    def availability_detail(self) -> str:
        """Human-readable availability note (version, or why unavailable)."""
        return "always available"

    # -- eligibility ------------------------------------------------------

    def supports_transform(self, transform) -> bool:
        """True when this backend can split batches for ``transform``."""
        return True

    def supports_parity(self, code) -> bool:
        """True when this backend can bulk-recover parities for ``code``."""
        return True

    def supports_join(self, transform) -> bool:
        """True when this backend can batch-join chunks for ``transform``."""
        return True

    def supports_crc_batch(self, parameters) -> bool:
        """True when this backend can batch-compute CRCs for ``parameters``.

        ``parameters`` is a :class:`repro.core.crc.CrcParameters`.  The
        default is ``False``: batch CRC support is opt-in per backend, and
        :meth:`CrcEngine.compute_batch` falls back to its pure slice-by-N
        fold for backends that decline.
        """
        return False

    # -- operations -------------------------------------------------------

    def split_batch_fields(self, transform, data) -> List[Tuple[int, int, int]]:
        """Buffer of whole chunks → ``(prefix, basis, deviation)`` list."""
        raise NotImplementedError

    def split_batch_columns(self, transform, data) -> BatchSplit:
        """Buffer of whole chunks → columnar :class:`BatchSplit`."""
        raise NotImplementedError

    def parities_of_bases(self, code, bases: Sequence[int]) -> Sequence[int]:
        """Parity bits of many bases (element ``i`` for ``bases[i]``)."""
        raise NotImplementedError

    def join_batch_to_bytes(
        self,
        transform,
        prefixes: Sequence[int],
        bases: Sequence[int],
        deviations: Sequence[int],
    ) -> bytes:
        """Rebuild and serialise every chunk of a resolved batch."""
        raise NotImplementedError

    def crc_batch(self, engine, data, record_bits: int) -> List[int]:
        """CRC of every fixed-size record in ``data`` (see
        :meth:`repro.core.crc.CrcEngine.compute_batch`)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# -- registry ------------------------------------------------------------------

_BACKENDS: Dict[str, CodecBackend] = {}


def register_backend(backend: CodecBackend, replace: bool = False) -> None:
    """Register a backend instance under its :attr:`~CodecBackend.name`.

    Re-registering an existing name raises unless ``replace`` is true —
    the hook a real ``native`` extension uses to take over the stub slot.
    """
    name = (backend.name or "").lower()
    if not name:
        raise BackendError("codec backend name cannot be empty")
    if name in _BACKENDS and not replace:
        raise BackendError(f"codec backend {backend.name!r} is already registered")
    _BACKENDS[name] = backend


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_BACKENDS)


def available_backend_names() -> List[str]:
    """Names of the backends that can run in this process, sorted."""
    return sorted(name for name, backend in _BACKENDS.items() if backend.available())


def get_backend(name: str) -> CodecBackend:
    """The registered backend called ``name`` (available or not)."""
    try:
        return _BACKENDS[name.lower()]
    except KeyError:
        raise BackendError(
            f"unknown codec backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        ) from None


def default_backend() -> CodecBackend:
    """The best available backend (highest priority; selection step 3)."""
    best: Optional[CodecBackend] = None
    for backend in _BACKENDS.values():
        if not backend.available():
            continue
        if best is None or backend.priority > best.priority:
            best = backend
    if best is None:  # pragma: no cover - pure is always available
        raise BackendError("no codec backend is available")
    return best


def resolve_backend(
    selection: Union[None, str, CodecBackend] = None
) -> CodecBackend:
    """Resolve a backend following the documented precedence.

    ``selection`` is a per-call override (name or instance).  When it is
    ``None``, the ``REPRO_GD_BACKEND`` environment variable is consulted;
    when that is unset (or ``auto``), the best available backend wins.
    Naming a registered-but-unavailable backend raises
    :class:`~repro.exceptions.BackendError` carrying the probe's reason.
    """
    source = "requested"
    if selection is None:
        env_value = os.environ.get(BACKEND_ENV, "").strip().lower()
        if env_value:
            selection = env_value
            source = f"named by {BACKEND_ENV}"
    if selection is None or selection == "auto":
        return default_backend()
    if isinstance(selection, CodecBackend):
        backend = selection
    else:
        backend = get_backend(selection)
    if not backend.available():
        raise BackendError(
            f"codec backend {backend.name!r} ({source}) is not available: "
            f"{backend.availability_detail()}"
        )
    return backend


def backend_status() -> List[Dict[str, object]]:
    """One status row per registered backend (the ``codecs --backends`` view).

    ``crc_batch`` reports whether the backend accelerates whole-batch CRC
    folding (probed with the order-8 syndrome parameters, the GD hot
    configuration); the pure slice-by-N fold is always available as the
    fallback, so ``False`` means "falls back", not "cannot compute".
    """
    from repro.core.crc import CrcParameters  # local: crc lazily imports us

    probe = CrcParameters(polynomial=0x1D, width=8, augment=False)
    default_name = default_backend().name
    rows: List[Dict[str, object]] = []
    for name in backend_names():
        backend = _BACKENDS[name]
        rows.append(
            {
                "name": name,
                "available": backend.available(),
                "priority": backend.priority,
                "default": name == default_name,
                "crc_batch": backend.available()
                and backend.supports_crc_batch(probe),
                "detail": backend.availability_detail(),
            }
        )
    return rows


# -- built-ins -----------------------------------------------------------------

from repro.core.backends.native import NativeBackend  # noqa: E402
from repro.core.backends.numpy_backend import NumpyBackend  # noqa: E402
from repro.core.backends.pure import PureBackend  # noqa: E402

register_backend(PureBackend())
register_backend(NumpyBackend())
register_backend(NativeBackend())
