"""The ``numpy`` codec backend: whole-buffer syndrome/parity computation.

The pure fast path already fused the per-chunk work into table lookups;
this backend removes the per-chunk *loop*.  It is the software shape of
widening a hardware CRC engine's datapath (LiteEth's ``LiteEthMACCRCEngine``
unrolls the LFSR across a data word and emits one XOR network per output
bit): here the LFSR is unrolled across the whole trace and the XOR
networks become ndarray gathers through precomputed byte-lane fold tables.

The batch split runs entirely on ``(count, chunk_bytes)`` views of the
input buffer:

1. **Syndromes** — the per-byte-lane contribution tables from
   :func:`repro.core.crc.lane_tables` are paired into 65536-entry
   ``uint16``-indexed tables (two byte lanes per gather), and the body
   syndrome of every chunk is the XOR-fold of the gathered lanes.  The
   prefix bits are masked off *before* the fold, so no per-prefix syndrome
   correction is needed — the masked rows are reused for basis extraction.
2. **Deviations** — the body syndrome *is* the deviation; the
   syndrome→position table is applied as one gather and the deviated bits
   are flipped back with a single fancy-indexed XOR scatter.
3. **Bases** — the corrected codeword rows are shifted right by ``m``
   with two vectorized byte-shifts (or a column drop for ``m == 8``) and
   sliced to the ``ceil(k / 8)`` basis bytes.
4. **Prefixes** — read from the (at most three) leading bytes with
   ``uint32`` arithmetic.

The decode direction reverses the pipeline: bulk parity recovery through
the same fold tables, parity OR-in, deviation scatter, vectorized prefix
embedding, one ``tobytes``.

Eligibility mirrors the pure lane path: orders up to 8 (the syndrome must
fit one byte lane) and prefixes of at most ~3 leading bytes.  Anything
else — and any batch shorter than
:data:`~repro.core.backends.MIN_BATCH_CHUNKS` — transparently stays on
the pure path.  Outputs are bit-identical to the reference; the property
suite asserts it across the full configuration matrix.

numpy stays an **optional** dependency (the ``fast`` extra): the import
is probed lazily and the backend reports itself unavailable, with the
import error preserved, when numpy is missing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backends import BatchSplit, CodecBackend
from repro.core.crc import lane_tables, reflect_bits
from repro.exceptions import ChunkSizeError, CodingError

__all__ = ["NumpyBackend"]

#: Lazy probe result: ``(module_or_None, detail)``.  Tests monkeypatch this
#: to simulate a numpy-less interpreter without uninstalling anything.
_PROBE: Optional[Tuple[Optional[object], str]] = None


def _numpy() -> Tuple[Optional[object], str]:
    """Import numpy once, remembering either the module or the failure."""
    global _PROBE
    if _PROBE is None:
        try:
            import numpy  # noqa: PLC0415 - optional dependency, probed lazily

            _PROBE = (numpy, f"numpy {numpy.__version__}")
        except Exception as exc:  # pragma: no cover - depends on environment
            _PROBE = (
                None,
                f"numpy is not installed ({exc}); install the 'fast' extra "
                "to enable this backend",
            )
    return _PROBE


def _build_fold(np, polynomial: int, width: int, length: int):
    """Gather tables folding ``length``-byte rows to their remainders.

    Returns ``("pairs", tables)`` — 65536-entry tables indexed by a
    big-endian ``uint16`` view, two byte lanes per gather — when the row
    length is even, else ``("bytes", tables)`` with one 256-entry table
    per byte lane.
    """
    lanes = lane_tables(polynomial, width, length)
    if length % 2 == 0:
        tables = []
        for index in range(0, length, 2):
            high = np.frombuffer(lanes[index], dtype=np.uint8)
            low = np.frombuffer(lanes[index + 1], dtype=np.uint8)
            tables.append(np.bitwise_xor(high[:, None], low[None, :]).reshape(-1))
        return ("pairs", tables)
    return ("bytes", [np.frombuffer(table, dtype=np.uint8) for table in lanes])


def _fold_rows(np, rows, fold):
    """XOR-fold ``(count, length)`` uint8 rows to per-row remainders."""
    mode, tables = fold
    if mode == "pairs":
        columns = rows.view(">u2")
        accumulator = tables[0][columns[:, 0]]
        for index in range(1, len(tables)):
            accumulator = accumulator ^ tables[index][columns[:, index]]
        return accumulator
    accumulator = tables[0][rows[:, 0]]
    for index in range(1, len(tables)):
        accumulator = accumulator ^ tables[index][rows[:, index]]
    return accumulator


class _SplitState:
    """Per-transform-configuration constants for the vectorized split."""

    __slots__ = (
        "chunk_bits",
        "chunk_bytes",
        "pad",
        "prefix_bits",
        "m",
        "n",
        "basis_bytes",
        "keep_mask",
        "fold",
        "positions",
        "bit_masks",
        "head_bytes",
        "head_shift",
    )

    def __init__(self, np, transform):
        code = transform.code
        m = code.m
        n = code.n
        length = transform.chunk_bytes
        self.chunk_bits = transform.chunk_bits
        self.chunk_bytes = length
        self.pad = length * 8 - transform.chunk_bits
        self.prefix_bits = transform.prefix_bits
        self.m = m
        self.n = n
        self.basis_bytes = (code.k + 7) // 8
        # Byte mask isolating the n-bit body: the fold then yields the body
        # syndrome directly (no per-prefix correction), and the masked rows
        # double as the codeword rows the basis is extracted from.
        keep = np.zeros(length, dtype=np.uint8)
        for column in range(length):
            low_bit = 8 * (length - 1 - column)
            if low_bit + 8 <= n:
                keep[column] = 0xFF
            elif low_bit < n:
                keep[column] = (1 << (n - low_bit)) - 1
        self.keep_mask = keep
        self.fold = _build_fold(np, code.crc_parameter, m, length)
        positions = np.full(1 << m, -1, dtype=np.int16)
        for syndrome, position in enumerate(code.syndrome_table.positions):
            if position is not None:
                positions[syndrome] = position
        self.positions = positions
        self.bit_masks = np.array([1 << bit for bit in range(8)], dtype=np.uint8)
        head_span = self.pad + self.prefix_bits
        self.head_bytes = (head_span + 7) // 8
        self.head_shift = 8 * self.head_bytes - head_span

    def split(self, np, transform, data):
        """The vectorized split: buffer → (prefixes, deviations, basis buf)."""
        length = self.chunk_bytes
        total = len(data)
        if total % length:
            raise ChunkSizeError(
                f"data length {total} is not a multiple of the chunk size "
                f"{length}"
            )
        count = total // length
        raw = np.frombuffer(data, dtype=np.uint8).reshape(count, length)
        if self.pad and count and (raw[:, 0] >> (8 - self.pad)).any():
            raise ChunkSizeError(
                f"chunk value does not fit in {self.chunk_bits} bits"
            )
        rows = raw & self.keep_mask
        deviations = _fold_rows(np, rows, self.fold)
        if self.prefix_bits:
            head = raw[:, 0].astype(np.uint32)
            for column in range(1, self.head_bytes):
                head = (head << np.uint32(8)) | raw[:, column]
            prefixes = head >> np.uint32(self.head_shift)
        else:
            prefixes = None
        # Flip each deviated bit back onto its codeword (syndrome 0 has no
        # deviation); row indices are distinct, so a fancy-indexed XOR works.
        pointed = self.positions[deviations]
        indices = np.flatnonzero(pointed >= 0)
        if indices.size:
            bits = pointed[indices]
            rows[indices, (length - 1) - (bits >> 3)] ^= self.bit_masks[bits & 7]
        basis_bytes = self.basis_bytes
        if self.m == 8:
            basis_rows = rows[:, length - 1 - basis_bytes : length - 1]
        else:
            shifted = rows >> self.m
            if length > 1:
                shifted[:, 1:] |= rows[:, :-1] << (8 - self.m)
            basis_rows = shifted[:, length - basis_bytes :]
        return prefixes, deviations, basis_rows.tobytes()


class _ParityState:
    """Per-code constants for bulk parity recovery (decode direction)."""

    __slots__ = ("parity_bytes", "fold")

    def __init__(self, np, code):
        self.parity_bytes = (code.n + 7) // 8
        self.fold = _build_fold(np, code.crc_parameter, code.m, self.parity_bytes)


def _materialize_bases(
    count: int, basis_buffer: bytes, basis_bytes: int
) -> List[int]:
    """Basis byte rows → basis integers.

    Per-chunk ``int.from_bytes`` is the floor of this conversion; real
    traces repeat a small working set of bases (that is the whole premise
    of GD), so a bytes-keyed dict collapses most rows to one dict probe.
    """
    cache: Dict[bytes, int] = {}
    get = cache.get
    from_bytes = int.from_bytes
    bases: List[int] = []
    append = bases.append
    for offset in range(0, count * basis_bytes, basis_bytes):
        key = basis_buffer[offset : offset + basis_bytes]
        value = get(key)
        if value is None:
            value = cache[key] = from_bytes(key, "big")
        append(value)
    return bases


def _materialize_columns(
    count: int, prefixes, deviations, basis_buffer: bytes, basis_bytes: int
) -> Tuple[List[int], List[int], List[int]]:
    """Arrays → the three plain column lists, without any per-chunk tuples."""
    prefix_list = prefixes.tolist() if prefixes is not None else [0] * count
    deviation_list = deviations.tolist()
    bases = _materialize_bases(count, basis_buffer, basis_bytes)
    return prefix_list, bases, deviation_list


def _materialize_fields(
    count: int, prefixes, deviations, basis_buffer: bytes, basis_bytes: int
) -> List[Tuple[int, int, int]]:
    """Columns → the classic ``(prefix, basis, deviation)`` tuple list."""
    prefix_list, bases, deviation_list = _materialize_columns(
        count, prefixes, deviations, basis_buffer, basis_bytes
    )
    return list(zip(prefix_list, bases, deviation_list))


class _CrcBatchState:
    """Per-(parameters, record width) constants for the whole-batch CRC fold.

    The per-position tables come from the engine's own batch state — the
    shared :func:`repro.core.crc.slice_table` registry — re-packed as
    ndarray gather tables: adjacent byte lanes are paired into 65536-entry
    ``uint16``-indexed tables when the CRC fits 16 bits (two lanes per
    gather, the transform-split trick), wider CRCs gather one 256-entry
    table per lane at the matching dtype.
    """

    __slots__ = (
        "record_bytes",
        "extra",
        "width",
        "init_term",
        "reflect_in",
        "reflect_out",
        "xor_out",
        "fold_mode",
        "fold_tables",
        "reflect_table",
    )

    def __init__(self, np, engine, record_bits: int):
        params = engine.parameters
        record_bytes, tables, init_term, _head_limit = engine._batch_state(
            record_bits
        )
        self.record_bytes = record_bytes
        self.extra = record_bytes * 8 - record_bits
        self.width = params.width
        self.init_term = init_term
        self.reflect_in = params.reflect_in
        self.reflect_out = params.reflect_out
        self.xor_out = params.xor_out
        if self.width <= 8:
            dtype = np.uint8
        elif self.width <= 16:
            dtype = np.uint16
        elif self.width <= 32:
            dtype = np.uint32
        else:
            dtype = np.uint64
        arrays = [np.array(table, dtype=dtype) for table in tables]
        if record_bytes >= 2 and record_bytes % 2 == 0 and self.width <= 16:
            self.fold_mode = "pairs"
            self.fold_tables = [
                np.bitwise_xor(
                    arrays[index][:, None], arrays[index + 1][None, :]
                ).reshape(-1)
                for index in range(0, record_bytes, 2)
            ]
        else:
            self.fold_mode = "bytes"
            self.fold_tables = arrays
        byte_reflect = [reflect_bits(value, 8) for value in range(256)]
        self.reflect_table = (
            np.array(byte_reflect, dtype=np.uint8) if params.reflect_in else None,
            np.array(byte_reflect, dtype=np.uint64) if params.reflect_out else None,
        )

    def compute(self, np, data, record_bits: int) -> List[int]:
        buf = bytes(data)
        total = len(buf)
        record_bytes = self.record_bytes
        if total % record_bytes:
            raise CodingError(
                f"buffer of {total} bytes is not a whole number of "
                f"{record_bytes}-byte records"
            )
        count = total // record_bytes
        if count == 0:
            return []
        rows = np.frombuffer(buf, dtype=np.uint8).reshape(count, record_bytes)
        if self.extra:
            bad = rows[:, 0] >> (8 - self.extra)
            if bad.any():
                index = int(np.flatnonzero(bad)[0])
                raise CodingError(
                    f"record {index} does not fit in {record_bits} bits"
                )
        if self.reflect_in:
            rows = self.reflect_table[0][rows]
        tables = self.fold_tables
        if self.fold_mode == "pairs":
            columns = rows.view(">u2") if rows.flags["C_CONTIGUOUS"] else (
                np.ascontiguousarray(rows).view(">u2")
            )
            accumulator = tables[0][columns[:, 0]]
            for index in range(1, len(tables)):
                accumulator = accumulator ^ tables[index][columns[:, index]]
        else:
            accumulator = tables[0][rows[:, 0]]
            for index in range(1, len(tables)):
                accumulator = accumulator ^ tables[index][rows[:, index]]
        if self.init_term:
            accumulator = accumulator ^ accumulator.dtype.type(self.init_term)
        if self.reflect_out:
            # Full 64-bit bit reversal as eight reflected byte gathers in
            # reverse order, then shift down to the CRC width.
            value = accumulator.astype(np.uint64)
            reversed_bits = np.zeros_like(value)
            reflect = self.reflect_table[1]
            for shift in range(0, 64, 8):
                reversed_bits = (reversed_bits << np.uint64(8)) | reflect[
                    ((value >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.intp)
                ]
            accumulator = reversed_bits >> np.uint64(64 - self.width)
        if self.xor_out:
            accumulator = accumulator ^ accumulator.dtype.type(self.xor_out)
        return accumulator.tolist()


class NumpyBackend(CodecBackend):
    """Vectorized backend running the batch hot paths as ndarray gathers."""

    name = "numpy"
    priority = 20
    accelerated = True

    def __init__(self):
        self._split_states: Dict[Tuple[int, int, int], _SplitState] = {}
        self._parity_states: Dict[Tuple[int, int], _ParityState] = {}
        self._crc_states: Dict[Tuple[object, int], _CrcBatchState] = {}

    # -- availability -----------------------------------------------------

    def available(self) -> bool:
        return _numpy()[0] is not None

    def availability_detail(self) -> str:
        return _numpy()[1]

    # -- eligibility ------------------------------------------------------

    def supports_transform(self, transform) -> bool:
        # Same shape as the pure lane path: the syndrome must fit one byte
        # lane; the prefix must fit the (three-byte) vectorized head read.
        if not self.available() or transform.code.m > 8:
            return False
        pad = transform.chunk_bytes * 8 - transform.chunk_bits
        return pad + transform.prefix_bits <= 24

    def supports_parity(self, code) -> bool:
        return self.available() and code.m <= 8

    def supports_join(self, transform) -> bool:
        return (
            self.available()
            and transform.code.m <= 8
            and transform.chunk_bits % 8 == 0
            and transform.prefix_bits <= 24
        )

    def supports_crc_batch(self, parameters) -> bool:
        # uint64 gathers cap the register; every Rocksoft knob (reflect,
        # init, xor_out, augment) is handled inside the fold state.
        return self.available() and parameters.width <= 64

    # -- state ------------------------------------------------------------

    def _split_state(self, np, transform) -> _SplitState:
        code = transform.code
        key = (code.full_polynomial, code.m, transform.chunk_bits)
        state = self._split_states.get(key)
        if state is None:
            state = self._split_states[key] = _SplitState(np, transform)
        return state

    def _parity_state(self, np, code) -> _ParityState:
        key = (code.full_polynomial, code.m)
        state = self._parity_states.get(key)
        if state is None:
            state = self._parity_states[key] = _ParityState(np, code)
        return state

    # -- operations -------------------------------------------------------

    def split_batch_fields(self, transform, data) -> List[Tuple[int, int, int]]:
        np = _numpy()[0]
        state = self._split_state(np, transform)
        prefixes, deviations, basis_buffer = state.split(np, transform, data)
        return _materialize_fields(
            len(deviations), prefixes, deviations, basis_buffer, state.basis_bytes
        )

    def split_batch_columns(self, transform, data) -> BatchSplit:
        np = _numpy()[0]
        state = self._split_state(np, transform)
        prefixes, deviations, basis_buffer = state.split(np, transform, data)
        count = len(deviations)
        basis_bytes = state.basis_bytes
        return BatchSplit(
            count,
            self.name,
            lambda: _materialize_fields(
                count, prefixes, deviations, basis_buffer, basis_bytes
            ),
            columns=lambda: _materialize_columns(
                count, prefixes, deviations, basis_buffer, basis_bytes
            ),
        )

    def crc_batch(self, engine, data, record_bits: int) -> List[int]:
        np = _numpy()[0]
        key = (engine.parameters, record_bits)
        state = self._crc_states.get(key)
        if state is None:
            state = self._crc_states[key] = _CrcBatchState(np, engine, record_bits)
        return state.compute(np, data, record_bits)

    def parities_of_bases(self, code, bases: Sequence[int]) -> Sequence[int]:
        if not bases:
            return b""
        np = _numpy()[0]
        state = self._parity_state(np, code)
        parity_bytes = state.parity_bytes
        m = code.m
        cache: Dict[int, bytes] = {}
        get = cache.get
        pieces: List[bytes] = []
        append = pieces.append
        for basis in bases:
            piece = get(basis)
            if piece is None:
                piece = cache[basis] = (basis << m).to_bytes(parity_bytes, "big")
            append(piece)
        rows = np.frombuffer(b"".join(pieces), dtype=np.uint8).reshape(
            len(bases), parity_bytes
        )
        return _fold_rows(np, rows, state.fold).tobytes()

    def join_batch_to_bytes(
        self,
        transform,
        prefixes: Sequence[int],
        bases: Sequence[int],
        deviations: Sequence[int],
    ) -> bytes:
        count = len(bases)
        if count == 0:
            return b""
        np = _numpy()[0]
        state = self._split_state(np, transform)
        parity_state = self._parity_state(np, transform.code)
        length = state.chunk_bytes
        parity_bytes = parity_state.parity_bytes
        m = state.m
        n = state.n
        cache: Dict[int, bytes] = {}
        get = cache.get
        pieces: List[bytes] = []
        append = pieces.append
        for basis in bases:
            piece = get(basis)
            if piece is None:
                piece = cache[basis] = (basis << m).to_bytes(parity_bytes, "big")
            append(piece)
        rows = np.frombuffer(b"".join(pieces), dtype=np.uint8).reshape(
            count, parity_bytes
        )
        # Parity bits are the remainder of basis * x**m — the same fold as
        # the forward syndrome, applied to the zero-padded basis rows.
        parities = _fold_rows(np, rows, parity_state.fold)
        if parity_bytes == length:
            chunks = rows.copy()
        else:
            chunks = np.zeros((count, length), dtype=np.uint8)
            chunks[:, length - parity_bytes :] = rows
        chunks[:, length - 1] |= parities
        pointed = state.positions[np.asarray(deviations, dtype=np.int64)]
        indices = np.flatnonzero(pointed >= 0)
        if indices.size:
            bits = pointed[indices]
            chunks[indices, (length - 1) - (bits >> 3)] ^= state.bit_masks[bits & 7]
        if state.prefix_bits:
            shifted = np.asarray(prefixes, dtype=np.uint32) << np.uint32(n & 7)
            anchor = length - 1 - (n >> 3)
            for step in range((state.prefix_bits + (n & 7) + 7) // 8):
                chunks[:, anchor - step] |= (
                    shifted >> np.uint32(8 * step)
                ).astype(np.uint8)
        return chunks.tobytes()
