"""Unified streaming compression engine.

Every compressor in the project — the GD codec and all comparison baselines
— is usable behind one interface, the :class:`Compressor` protocol:

* ``compress_stream(blocks)`` consumes an iterable of byte blocks (file
  reads, packet payloads, trace chunks) and lazily yields compressed byte
  blocks;
* ``decompress_stream(blocks)`` inverts it, again block by block.

Both directions run in bounded memory: no implementation materialises the
whole input or output, so a multi-gigabyte trace streams through a constant
few-chunk working set.  The GD implementation writes an *incremental*
``GDZ1`` container (the :data:`~repro.core.codec.FLAG_STREAMED` layout:
records run until an end tag followed by the original length, instead of a
record count in the header) and its reader also accepts the legacy
whole-buffer layout produced by :meth:`GDCodec.to_container`.

Name-based construction lives in :mod:`repro.registry`; this module holds
the implementations.

>>> compressor = GzipStreamCompressor()
>>> stream = compressor.compress_stream([b"chunk one, ", b"chunk two"])
>>> b"".join(compressor.decompress_stream(stream))
b'chunk one, chunk two'
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.core.codec import CONTAINER_HEADER, CONTAINER_MAGIC, FLAG_STREAMED, GDCodec
from repro.core.dictionary import BasisDictionary, EvictionPolicy
from repro.core.encoder import EncoderMode
from repro.core.records import GDRecord
from repro.exceptions import CodingError, ReproError

__all__ = [
    "Compressor",
    "GDStreamCompressor",
    "GzipStreamCompressor",
    "DedupStreamCompressor",
    "NullStreamCompressor",
    "compress_bytes",
    "decompress_bytes",
    "iter_file_blocks",
    "compress_file",
    "decompress_file",
    "DEFAULT_BLOCK_SIZE",
]

#: Default read size for file streaming (a comfortable multiple of every
#: supported chunk size).
DEFAULT_BLOCK_SIZE = 64 * 1024

#: Record tag terminating a streamed GDZ1 container (followed by ``>Q``
#: original byte count).  0 can never collide with a record tag (types 1-3).
_END_TAG = 0x00


class _IncrementalBuffer:
    """Byte accumulator shared by the incremental stream parsers.

    Parsers read at ``position`` and advance it; consumed bytes are
    reclaimed once they pass the compaction threshold so the buffer stays
    bounded by the input block size plus one unparsed item.
    """

    __slots__ = ("data", "position")

    def __init__(self) -> None:
        self.data = bytearray()
        self.position = 0

    def feed(self, block: bytes) -> None:
        self.data += block

    @property
    def available(self) -> int:
        """Bytes not yet consumed by the parser."""
        return len(self.data) - self.position

    def compact(self) -> None:
        """Drop consumed bytes once enough of them have accumulated."""
        if self.position > DEFAULT_BLOCK_SIZE:
            del self.data[: self.position]
            self.position = 0


def _check_random_eviction_seed(
    policy: "str | EvictionPolicy", seed: Optional[int]
) -> None:
    """Random eviction across a stream boundary needs an explicit seed.

    Compressor and decompressor run in different processes; without a
    shared seed their dictionaries evict differently once full and
    references silently resolve to the wrong entries.  Fail loudly at
    construction instead.
    """
    if EvictionPolicy.from_name(policy) is EvictionPolicy.RANDOM and seed is None:
        raise ReproError(
            "eviction_policy='random' requires an explicit eviction_seed for "
            "streaming: the decompressor must replay the same eviction "
            "sequence or references silently corrupt"
        )


@runtime_checkable
class Compressor(Protocol):
    """A named, streaming, lossless compressor.

    Implementations carry a short ``name`` (the registry key) and a
    ``magic`` prefix that identifies their output format, and must satisfy
    ``b"".join(decompress_stream(compress_stream(blocks))) ==
    b"".join(blocks)`` for any iterable of byte blocks, processing both
    directions in bounded memory.
    """

    name: str
    magic: bytes

    def compress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Lazily compress an iterable of byte blocks."""
        ...

    def decompress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Lazily decompress an iterable of byte blocks."""
        ...


# -- convenience wrappers -----------------------------------------------------


def compress_bytes(compressor: Compressor, data: bytes) -> bytes:
    """One-shot compression of an in-memory byte string."""
    return b"".join(compressor.compress_stream([data]))


def decompress_bytes(compressor: Compressor, blob: bytes) -> bytes:
    """One-shot decompression of an in-memory byte string."""
    return b"".join(compressor.decompress_stream([blob]))


def iter_file_blocks(
    path: "str | Path", block_size: int = DEFAULT_BLOCK_SIZE
) -> Iterator[bytes]:
    """Yield a file's contents as blocks of at most ``block_size`` bytes."""
    if block_size <= 0:
        raise ReproError(f"block size must be positive, got {block_size}")
    with open(path, "rb") as stream:
        while True:
            block = stream.read(block_size)
            if not block:
                return
            yield block


def _pump_file(
    stream_function: "Callable[[Iterable[bytes]], Iterator[bytes]]",
    source: "str | Path",
    destination: "str | Path",
    block_size: int,
) -> Tuple[int, int]:
    """Stream ``source`` through a compress/decompress function into
    ``destination``; returns ``(input_bytes, output_bytes)``.

    Output goes to a temporary file that replaces ``destination`` only on
    success, so a missing source or a corrupt stream never clobbers a
    pre-existing destination file.
    """
    read = written = 0

    def counted_blocks() -> Iterator[bytes]:
        nonlocal read
        for block in iter_file_blocks(source, block_size):
            read += len(block)
            yield block

    destination = Path(destination)
    scratch = destination.with_name(f".{destination.name}.{os.getpid()}.tmp")
    try:
        with open(scratch, "wb") as out:
            for block in stream_function(counted_blocks()):
                written += len(block)
                out.write(block)
        os.replace(scratch, destination)
    finally:
        if scratch.exists():
            scratch.unlink()
    return read, written


def compress_file(
    compressor: Compressor,
    source: "str | Path",
    destination: "str | Path",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[int, int]:
    """Stream-compress ``source`` into ``destination``.

    Returns ``(input_bytes, output_bytes)``.  Memory stays bounded by the
    block size regardless of the file size.
    """
    return _pump_file(compressor.compress_stream, source, destination, block_size)


def decompress_file(
    compressor: Compressor,
    source: "str | Path",
    destination: "str | Path",
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[int, int]:
    """Stream-decompress ``source`` into ``destination``.

    Returns ``(input_bytes, output_bytes)``.
    """
    return _pump_file(compressor.decompress_stream, source, destination, block_size)


# -- GD ------------------------------------------------------------------------


class GDStreamCompressor:
    """The GD codec behind the streaming interface.

    Each ``compress_stream`` call uses a fresh codec, so every stream is
    self-contained (all identifiers referenced by type-3 records are
    introduced by earlier type-2 records in the same stream) and carries
    everything needed to decompress it in its header.  Input blocks are
    re-chunked to the codec's chunk size internally; the final partial chunk
    is zero padded and the original length restored from the trailer.
    """

    name = "gd"
    magic = CONTAINER_MAGIC

    def __init__(
        self,
        order: int = 8,
        chunk_bits: Optional[int] = None,
        identifier_bits: int = 15,
        mode: "str | EncoderMode" = EncoderMode.DYNAMIC,
        eviction_policy: "str | EvictionPolicy" = EvictionPolicy.LRU,
        learning_delay_chunks: int = 0,
        eviction_seed: Optional[int] = None,
        static_bases: Optional[Iterable[int]] = None,
        backend: Optional[str] = None,
    ):
        _check_random_eviction_seed(eviction_policy, eviction_seed)
        self._codec_kwargs = dict(
            order=order,
            chunk_bits=chunk_bits,
            identifier_bits=identifier_bits,
            mode=mode,
            eviction_policy=eviction_policy,
            alignment_padding_bits=0,
            learning_delay_chunks=learning_delay_chunks,
            eviction_seed=eviction_seed,
            static_bases=list(static_bases) if static_bases is not None else None,
            backend=backend,
        )

    def codec(self) -> GDCodec:
        """A fresh codec configured with this compressor's parameters."""
        return GDCodec(**self._codec_kwargs)

    @staticmethod
    def _serialise(records: List[GDRecord]) -> bytes:
        return b"".join(
            bytes([int(record.record_type)]) + record.to_bytes() for record in records
        )

    def compress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Re-chunk, GD-encode and frame a block stream incrementally."""
        codec = self.codec()
        encoder = codec.encoder
        chunk_size = codec.chunk_bytes
        yield codec.container_header(streamed=True)
        pending = bytearray()
        total = 0
        for block in blocks:
            if not block:
                continue
            total += len(block)
            pending += block
            usable = len(pending) - len(pending) % chunk_size
            if usable:
                records = encoder.encode_chunks(bytes(pending[:usable]))
                del pending[:usable]
                yield self._serialise(records)
        if pending:
            pending += b"\x00" * (chunk_size - len(pending))
            yield self._serialise(encoder.encode_chunks(bytes(pending)))
        yield bytes([_END_TAG]) + struct.pack(">Q", total)

    def decompress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Incrementally parse and decode a GDZ1 container stream.

        Accepts both the streamed layout this class writes and the legacy
        whole-buffer layout of :meth:`GDCodec.to_container`.  The wire
        parameters (order, chunk bits, identifier width, record padding)
        come from the stream header; the dictionary behaviour (mode,
        static bases, eviction policy and seed) comes from this instance,
        so a compressor configured with e.g. a static table or seeded
        random eviction decodes its own streams.  Holds back one chunk of
        decoded output so the tail padding can be trimmed once the
        original length trailer arrives.
        """
        buffer = _IncrementalBuffer()
        codec: Optional[GDCodec] = None
        decoder = None
        chunk_size = 0
        streamed = False
        remaining: Optional[int] = None  # legacy layout: records still expected
        original_bytes: Optional[int] = None
        holdback = b""
        emitted = 0
        finished = False

        def drain() -> Iterator[bytes]:
            """Parse and decode everything currently complete in the buffer."""
            nonlocal codec, decoder, chunk_size
            nonlocal streamed, remaining, original_bytes, finished, holdback, emitted
            while True:
                if finished:
                    if buffer.available:
                        raise CodingError(
                            f"{buffer.available} trailing bytes after container end"
                        )
                    return
                if codec is None:
                    if buffer.available < CONTAINER_HEADER.size:
                        break
                    magic, order, chunk_bits, identifier_bits, flags, count, padding = (
                        CONTAINER_HEADER.unpack_from(buffer.data, buffer.position)
                    )
                    if magic != CONTAINER_MAGIC:
                        raise CodingError(f"bad container magic {magic!r}")
                    kwargs = dict(self._codec_kwargs)
                    kwargs.update(
                        order=order,
                        chunk_bits=chunk_bits,
                        identifier_bits=identifier_bits,
                        alignment_padding_bits=padding,
                    )
                    codec = GDCodec(**kwargs)
                    decoder = codec.decoder
                    chunk_size = codec.chunk_bytes
                    streamed = bool(flags & FLAG_STREAMED)
                    remaining = None if streamed else count
                    buffer.position += CONTAINER_HEADER.size
                    continue
                if not streamed and original_bytes is None:
                    # Legacy layout: the 8-byte original length precedes the
                    # records instead of trailing them.
                    if buffer.available < 8:
                        break
                    (original_bytes,) = struct.unpack_from(
                        ">Q", buffer.data, buffer.position
                    )
                    buffer.position += 8
                    continue
                if remaining == 0:
                    finished = True
                    continue
                if buffer.available < 1:
                    break
                tag = buffer.data[buffer.position]
                if streamed and tag == _END_TAG:
                    if buffer.available < 9:
                        break
                    (original_bytes,) = struct.unpack_from(
                        ">Q", buffer.data, buffer.position + 1
                    )
                    buffer.position += 9
                    finished = True
                    continue
                # Collect every complete record currently buffered, then
                # decode them as one batch.
                records: List[GDRecord] = []
                while True:
                    if buffer.available < 1:
                        break
                    tag = buffer.data[buffer.position]
                    if streamed and tag == _END_TAG:
                        break
                    if remaining is not None and remaining == 0:
                        break
                    size = codec.record_wire_size(tag)
                    if buffer.available < 1 + size:
                        break
                    record, buffer.position = codec.parse_record(
                        buffer.data, buffer.position
                    )
                    records.append(record)
                    if remaining is not None:
                        remaining -= 1
                if not records:
                    break
                decoded = decoder.decode_batch_to_bytes(records)
                combined = holdback + decoded
                if len(combined) > chunk_size:
                    out = combined[:-chunk_size]
                    holdback = combined[-chunk_size:]
                    emitted += len(out)
                    yield out
                else:
                    holdback = combined
            buffer.compact()

        for block in blocks:
            if not block:
                continue
            buffer.feed(block)
            yield from drain()
        if not finished or original_bytes is None:
            raise CodingError("truncated GDZ1 stream")
        keep = original_bytes - emitted
        if keep < 0 or keep > len(holdback):
            raise CodingError(
                f"container length {original_bytes} inconsistent with "
                f"{emitted + len(holdback)} decoded bytes"
            )
        if keep:
            yield holdback[:keep]


# -- gzip ----------------------------------------------------------------------


class GzipStreamCompressor:
    """DEFLATE with gzip framing behind the streaming interface.

    Streaming twin of :class:`~repro.baselines.gzip_baseline.GzipBaseline`
    (same algorithm and container as the paper's ``gzip`` tool run).
    """

    name = "gzip"
    magic = b"\x1f\x8b"

    #: wbits selecting the gzip container in zlib.
    _GZIP_WBITS = 31

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ReproError(f"compression level must be in 1..9, got {level}")
        self.level = level

    def compress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Feed blocks through one DEFLATE stream, yielding as zlib flushes."""
        compressor = zlib.compressobj(self.level, zlib.DEFLATED, self._GZIP_WBITS)
        for block in blocks:
            out = compressor.compress(block)
            if out:
                yield out
        yield compressor.flush()

    def decompress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Inflate a gzip stream block by block.

        Like ``gunzip``, concatenated gzip members decode to the
        concatenation of their contents, and corrupt data after a valid
        member is an error rather than silently dropped.
        """
        decompressor = zlib.decompressobj(self._GZIP_WBITS)

        def inflate(data: bytes) -> Iterator[bytes]:
            nonlocal decompressor
            while data:
                try:
                    out = decompressor.decompress(data)
                except zlib.error as error:
                    raise CodingError(f"corrupt gzip stream: {error}") from None
                if out:
                    yield out
                if not decompressor.eof:
                    return
                # Member finished: anything left over starts the next one.
                data = decompressor.unused_data
                if data:
                    decompressor = zlib.decompressobj(self._GZIP_WBITS)

        for block in blocks:
            yield from inflate(block)
        tail = decompressor.flush()
        if not decompressor.eof:
            raise CodingError("truncated gzip stream")
        if tail:
            yield tail


# -- classic deduplication -----------------------------------------------------


class DedupStreamCompressor:
    """Classic exact deduplication as a round-trippable stream format.

    The accounting-only :class:`~repro.baselines.dedup.ExactDedupBaseline`
    models what classic dedup would transmit; this class actually produces a
    decodable stream so the baseline participates in the same round-trip
    harness as GD and gzip.  Wire format: a 7-byte header (magic, chunk
    size, identifier width) followed by tagged records — 0x02 full literal
    chunk, 0x03 identifier reference, 0x01 short final literal (2-byte
    length prefix), 0x00 end of stream.  Decoder and encoder maintain
    identical dictionaries by replaying the literals, exactly like the GD
    decoder learns from type-2 records.
    """

    name = "dedup"
    magic = b"GDD1"

    _HEADER = struct.Struct(">4sHB")  # magic, chunk_bytes, identifier_bits
    _TAG_END = 0x00
    _TAG_SHORT_LITERAL = 0x01
    _TAG_LITERAL = 0x02
    _TAG_REFERENCE = 0x03

    def __init__(
        self,
        chunk_bytes: int = 32,
        identifier_bits: int = 15,
        eviction_policy: "str | EvictionPolicy" = EvictionPolicy.LRU,
        eviction_seed: Optional[int] = None,
    ):
        if not 1 <= chunk_bytes <= 0xFFFF:
            raise ReproError(f"chunk_bytes must be in 1..65535, got {chunk_bytes}")
        if not 1 <= identifier_bits <= 32:
            raise ReproError(
                f"identifier_bits must be in 1..32, got {identifier_bits}"
            )
        _check_random_eviction_seed(eviction_policy, eviction_seed)
        self.chunk_bytes = chunk_bytes
        self.identifier_bits = identifier_bits
        self._eviction_policy = EvictionPolicy.from_name(eviction_policy)
        self._eviction_seed = eviction_seed

    def _dictionary(self) -> BasisDictionary:
        return BasisDictionary(
            1 << self.identifier_bits, self._eviction_policy, seed=self._eviction_seed
        )

    @property
    def _identifier_size(self) -> int:
        return (self.identifier_bits + 7) // 8

    def compress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Deduplicate fixed-size chunks against a bounded dictionary."""
        dictionary = self._dictionary()
        chunk_size = self.chunk_bytes
        id_size = self._identifier_size
        yield self._HEADER.pack(self.magic, chunk_size, self.identifier_bits)
        pending = bytearray()
        for block in blocks:
            if not block:
                continue
            pending += block
            if len(pending) < chunk_size:
                continue
            out = bytearray()
            for offset in range(0, len(pending) - chunk_size + 1, chunk_size):
                chunk = bytes(pending[offset : offset + chunk_size])
                identifier = dictionary.lookup(chunk)
                if identifier is not None:
                    out.append(self._TAG_REFERENCE)
                    out += identifier.to_bytes(id_size, "big")
                else:
                    dictionary.insert(chunk)
                    out.append(self._TAG_LITERAL)
                    out += chunk
            del pending[: len(pending) - len(pending) % chunk_size]
            yield bytes(out)
        tail = b""
        if pending:
            tail = (
                bytes([self._TAG_SHORT_LITERAL])
                + struct.pack(">H", len(pending))
                + bytes(pending)
            )
        yield tail + bytes([self._TAG_END])

    def decompress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Replay literals and resolve references with a mirrored dictionary.

        Decoded chunks accumulate into one output buffer per incoming block
        (a 32-byte-chunk stream would otherwise mean one yield — and one
        downstream write — per record).
        """
        buffer = _IncrementalBuffer()
        dictionary: Optional[BasisDictionary] = None
        chunk_size = 0
        id_size = 0
        finished = False
        for block in blocks:
            if block:
                buffer.feed(block)
            out = bytearray()
            while True:
                if finished:
                    if buffer.available:
                        raise CodingError(
                            f"{buffer.available} trailing bytes after dedup stream end"
                        )
                    break
                if dictionary is None:
                    if buffer.available < self._HEADER.size:
                        break
                    magic, chunk_size, identifier_bits = self._HEADER.unpack_from(
                        buffer.data, buffer.position
                    )
                    if magic != self.magic:
                        raise CodingError(f"bad dedup stream magic {magic!r}")
                    # Same bounds the encoder enforces — the header is
                    # untrusted input.
                    if chunk_size < 1:
                        raise CodingError(
                            f"dedup stream header has chunk size {chunk_size}"
                        )
                    if not 1 <= identifier_bits <= 32:
                        raise CodingError(
                            f"dedup stream header has identifier width "
                            f"{identifier_bits} (valid: 1..32)"
                        )
                    dictionary = BasisDictionary(
                        1 << identifier_bits,
                        self._eviction_policy,
                        seed=self._eviction_seed,
                    )
                    id_size = (identifier_bits + 7) // 8
                    buffer.position += self._HEADER.size
                    continue
                if buffer.available < 1:
                    break
                position = buffer.position
                tag = buffer.data[position]
                if tag == self._TAG_END:
                    buffer.position += 1
                    finished = True
                    continue
                if tag == self._TAG_LITERAL:
                    if buffer.available < 1 + chunk_size:
                        break
                    chunk = bytes(buffer.data[position + 1 : position + 1 + chunk_size])
                    dictionary.insert(chunk)
                    buffer.position += 1 + chunk_size
                    out += chunk
                elif tag == self._TAG_REFERENCE:
                    if buffer.available < 1 + id_size:
                        break
                    identifier = int.from_bytes(
                        buffer.data[position + 1 : position + 1 + id_size], "big"
                    )
                    chunk = dictionary.reverse_lookup(identifier)
                    if chunk is None:
                        raise CodingError(
                            f"dedup reference to unmapped identifier {identifier}"
                        )
                    dictionary.touch(chunk)
                    buffer.position += 1 + id_size
                    out += chunk
                elif tag == self._TAG_SHORT_LITERAL:
                    if buffer.available < 3:
                        break
                    (length,) = struct.unpack_from(">H", buffer.data, position + 1)
                    if buffer.available < 3 + length:
                        break
                    out += buffer.data[position + 3 : position + 3 + length]
                    buffer.position += 3 + length
                else:
                    raise CodingError(f"unknown dedup record tag {tag}")
            if out:
                yield bytes(out)
            buffer.compact()
        if not finished:
            raise CodingError("truncated dedup stream")


# -- null ----------------------------------------------------------------------


class NullStreamCompressor:
    """The no-op compressor: blocks pass through behind a 4-byte magic.

    The magic exists so the format is sniffable like every other stream
    format; apart from those 4 bytes the output is the input.
    """

    name = "null"
    magic = b"GDN1"

    def compress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Prepend the magic, then forward every block untouched."""
        yield self.magic
        for block in blocks:
            if block:
                yield block

    def decompress_stream(self, blocks: Iterable[bytes]) -> Iterator[bytes]:
        """Strip and validate the magic, then forward every block."""
        needed = len(self.magic)
        prefix = b""
        for block in blocks:
            if not block:
                continue
            if needed:
                taken = block[:needed]
                prefix += taken
                block = block[len(taken):]
                needed -= len(taken)
                if needed == 0 and prefix != self.magic:
                    raise CodingError(f"bad null stream magic {prefix!r}")
            if block:
                yield block
        if needed:
            raise CodingError("truncated null stream")
