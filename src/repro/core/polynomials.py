"""Registry of Hamming-code generator polynomials (Table 1 of the paper).

Table 1 of the ZipLine paper lists, for every Hamming code from (7, 4) up to
(32767, 32752), a generator polynomial and the equivalent parameter to
program into a Tofino CRC-m extern (the polynomial with its leading
``x**m`` term stripped).

This module reproduces that table as :data:`TABLE_1`, provides lookup
helpers keyed by ``m`` or by ``(n, k)``, and records the two entries whose
printed CRC parameter in the paper does not match the printed polynomial
(the two (511, 502) rows) — see :data:`PAPER_ERRATA`.  The *polynomial*
column is treated as authoritative; the CRC parameter is derived from it and
each polynomial is checked for primitivity by the test suite (a primitive
degree-``m`` polynomial is exactly what a (2^m - 1, 2^m - m - 1) Hamming
code requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.crc import is_primitive_polynomial, polynomial_str
from repro.exceptions import CodingError

__all__ = [
    "HammingPolynomial",
    "TABLE_1",
    "PAPER_ERRATA",
    "polynomial_for_order",
    "polynomials_for_order",
    "polynomial_for_code",
    "supported_orders",
    "default_polynomial",
    "crc_parameter",
    "render_table_1",
]


@dataclass(frozen=True)
class HammingPolynomial:
    """One row of Table 1: a Hamming code and its generator polynomial.

    Attributes
    ----------
    n, k, m:
        Code length, message length and parity width (``n = 2**m - 1``,
        ``k = n - m``).
    full_polynomial:
        Generator polynomial in full binary form including the leading
        ``x**m`` term (e.g. ``0b1011`` for ``x^3 + x + 1``).
    paper_crc_parameter:
        The "Parameter for CRC-m" column exactly as printed in the paper.
        Usually equals :attr:`crc_parameter`; differs for the two erratum
        rows.
    """

    n: int
    k: int
    m: int
    full_polynomial: int
    paper_crc_parameter: int

    def __post_init__(self) -> None:
        if self.n != (1 << self.m) - 1:
            raise CodingError(f"n={self.n} is not 2^{self.m} - 1")
        if self.k != self.n - self.m:
            raise CodingError(f"k={self.k} is not n - m for n={self.n}, m={self.m}")
        if self.full_polynomial.bit_length() - 1 != self.m:
            raise CodingError(
                f"polynomial degree {self.full_polynomial.bit_length() - 1} "
                f"does not match m={self.m}"
            )

    @property
    def crc_parameter(self) -> int:
        """CRC-m parameter derived from the polynomial (leading term stripped)."""
        return self.full_polynomial ^ (1 << self.m)

    @property
    def code(self) -> Tuple[int, int]:
        """The ``(n, k)`` pair."""
        return (self.n, self.k)

    @property
    def polynomial_text(self) -> str:
        """Human-readable polynomial, e.g. ``x^3 + x + 1``."""
        return polynomial_str(self.full_polynomial)

    def matches_paper(self) -> bool:
        """True when the derived CRC parameter equals the paper's column."""
        return self.crc_parameter == self.paper_crc_parameter

    def is_valid_hamming_generator(self) -> bool:
        """True when the polynomial is primitive (usable as a Hamming generator)."""
        return is_primitive_polynomial(self.full_polynomial)


def _row(m: int, full_polynomial: int, paper_parameter: int) -> HammingPolynomial:
    n = (1 << m) - 1
    return HammingPolynomial(
        n=n,
        k=n - m,
        m=m,
        full_polynomial=full_polynomial,
        paper_crc_parameter=paper_parameter,
    )


#: Table 1 of the paper, in row order.  Polynomials are written in full
#: binary form; e.g. ``0b1011`` is ``x^3 + x + 1``.
TABLE_1: List[HammingPolynomial] = [
    _row(3, 0b1011, 0x3),                       # (7, 4)        x^3+x+1
    _row(4, 0b10011, 0x3),                      # (15, 11)      x^4+x+1
    _row(5, 0b100101, 0x05),                    # (31, 26)      x^5+x^2+1
    _row(5, 0b110111, 0x17),                    # (31, 26)      x^5+x^4+x^2+x+1
    _row(6, 0b1000011, 0x03),                   # (63, 57)      x^6+x+1
    _row(7, 0b10001001, 0x09),                  # (127, 120)    x^7+x^3+1
    _row(8, 0b100011101, 0x1D),                 # (255, 247)    x^8+x^4+x^3+x^2+1
    _row(9, 0b1000010001, 0x00D),               # (511, 502)    x^9+x^4+1
    _row(9, 0b1111100011, 0x0F3),               # (511, 502)    x^9+x^8+x^7+x^6+x^5+x+1
    _row(10, 0b10000001001, 0x009),             # (1023, 1013)  x^10+x^3+1
    _row(11, 0b100000000101, 0x005),            # (2047, 2036)  x^11+x^2+1
    _row(12, 0b1000001010011, 0x053),           # (4095, 4083)  x^12+x^6+x^4+x+1
    _row(13, 0b10000000011011, 0x01B),          # (8191, 8178)  x^13+x^4+x^3+x+1
    _row(14, 0b100000101000011, 0x143),         # (16383, 16369) x^14+x^8+x^6+x+1
    _row(15, 0b1000000000000011, 0x003),        # (32767, 32752) x^15+x+1
]

#: Rows whose printed CRC parameter in the paper does not equal the printed
#: polynomial with its leading term stripped.  Maps row index (0-based within
#: :data:`TABLE_1`) to a short explanation.  The reproduction derives the CRC
#: parameter from the polynomial, which is the internally consistent choice.
PAPER_ERRATA: Dict[int, str] = {
    7: (
        "Paper prints parameter 0x00D for x^9 + x^4 + 1; stripping the "
        "leading term gives 0x011.  The polynomial is the standard primitive "
        "trinomial, so the parameter column appears to be a typo."
    ),
    8: (
        "Paper prints parameter 0x0F3 for x^9 + x^8 + x^7 + x^6 + x^5 + x + 1; "
        "stripping the leading term gives 0x1E3."
    ),
}

_BY_ORDER: Dict[int, List[HammingPolynomial]] = {}
for _entry in TABLE_1:
    _BY_ORDER.setdefault(_entry.m, []).append(_entry)


def supported_orders() -> List[int]:
    """Sorted list of Hamming orders ``m`` present in Table 1."""
    return sorted(_BY_ORDER)


def polynomials_for_order(m: int) -> List[HammingPolynomial]:
    """All Table 1 rows with parity width ``m`` (some orders list two)."""
    try:
        return list(_BY_ORDER[m])
    except KeyError:
        raise CodingError(
            f"no generator polynomial registered for m={m}; "
            f"supported orders: {supported_orders()}"
        ) from None


def polynomial_for_order(m: int, index: int = 0) -> HammingPolynomial:
    """The ``index``-th Table 1 row for parity width ``m`` (default: first)."""
    rows = polynomials_for_order(m)
    if not 0 <= index < len(rows):
        raise CodingError(
            f"m={m} has {len(rows)} registered polynomial(s); index {index} is invalid"
        )
    return rows[index]


def polynomial_for_code(n: int, k: int, index: int = 0) -> HammingPolynomial:
    """Look up a Table 1 row by its ``(n, k)`` pair."""
    m = n - k
    row = polynomial_for_order(m, index)
    if row.n != n or row.k != k:
        raise CodingError(f"({n}, {k}) is not a Hamming code present in Table 1")
    return row


def default_polynomial() -> HammingPolynomial:
    """The polynomial used by the paper's evaluation: ``m = 8``, (255, 247)."""
    return polynomial_for_order(8)


def crc_parameter(m: int, index: int = 0) -> int:
    """CRC-m extern parameter for the given order (leading term stripped)."""
    return polynomial_for_order(m, index).crc_parameter


def render_table_1(include_validity: bool = False) -> str:
    """Render Table 1 as fixed-width text, optionally with a primitivity column.

    Used by the Table 1 benchmark harness to print the regenerated table next
    to the paper's values.
    """
    header = f"{'Code':>16}  {'Generator polynomial':<40}  {'CRC-m param':>12}"
    if include_validity:
        header += f"  {'primitive':>9}  {'matches paper':>13}"
    lines = [header, "-" * len(header)]
    for entry in TABLE_1:
        row = (
            f"({entry.n}, {entry.k})".rjust(16)
            + "  "
            + entry.polynomial_text.ljust(40)
            + "  "
            + f"0x{entry.crc_parameter:X}".rjust(12)
        )
        if include_validity:
            row += (
                f"  {str(entry.is_valid_hamming_generator()):>9}"
                f"  {str(entry.matches_paper()):>13}"
            )
        lines.append(row)
    return "\n".join(lines)


def find_primitive_polynomials(m: int, limit: Optional[int] = None) -> List[int]:
    """Search for primitive polynomials of degree ``m`` by brute force.

    Returns full-form polynomials with non-zero constant term, lowest value
    first.  Useful for the ablation benchmarks that sweep Hamming orders not
    present in Table 1, and for validating the registry itself.
    """
    if m <= 0:
        raise CodingError(f"degree must be positive, got {m}")
    found: List[int] = []
    start = (1 << m) | 1
    for candidate in range(start, 1 << (m + 1), 2):
        if is_primitive_polynomial(candidate):
            found.append(candidate)
            if limit is not None and len(found) >= limit:
                break
    return found
