"""The GD transformation function: fixed-size chunks ⇄ (prefix, basis, deviation).

The Hamming code of order ``m`` works on chunks of exactly ``n = 2**m - 1``
bits, which is never byte aligned.  ZipLine therefore processes chunks of
``n + e`` bits where the ``e`` extra most-significant bits (``e = 1`` for the
paper's 256-bit chunks with ``m = 8``) are carried through verbatim — the
paper calls this "one additional bit to store the MSB of the raw data
packet".

:class:`GDTransform` wraps a :class:`~repro.core.hamming.HammingCode` and
handles this framing: it accepts chunks as integers, byte strings or
:class:`~repro.core.bits.BitVector` values, splits them into a *prefix*
(the verbatim extra bits), a *basis* and a *deviation* (the syndrome), and
reassembles them exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.backends import (
    MIN_BATCH_CHUNKS,
    BatchSplit,
    CodecBackend,
    resolve_backend,
)
from repro.core.bits import (
    BitVector,
    bits_to_bytes_len,
    int_to_bytes,
    mask,
    padding_bits_for_alignment,
)
from repro.core.crc import lane_tables, prefix_syndrome_table
from repro.core.hamming import HammingCode
from repro.exceptions import ChunkSizeError, CodingError

__all__ = ["GDParts", "GDTransform", "ChunkLike", "GDFields", "fast_path_default"]

ChunkLike = Union[int, bytes, bytearray, memoryview, BitVector]

#: The allocation-free representation the fast path works in:
#: ``(prefix, basis, deviation)`` as plain integers.
GDFields = Tuple[int, int, int]

#: Environment switch: set ``REPRO_GD_FAST=0`` to force the reference
#: (checked, layer-by-layer) transform everywhere, e.g. while bisecting a
#: suspected fast-path bug.  Any other value (or absence) keeps the fused
#: table-driven path on.
_FAST_ENV = "REPRO_GD_FAST"

#: Largest prefix width for which the per-prefix syndrome-correction table
#: is precomputed (2**bits entries).  Wider prefixes — far beyond anything
#: the paper's framing uses — fall back to re-serialising the body.
_MAX_PREFIX_TABLE_BITS = 12


def fast_path_default() -> bool:
    """The process-wide fast-path default (``REPRO_GD_FAST``, on unless 0)."""
    return os.environ.get(_FAST_ENV, "1").strip().lower() not in ("0", "false", "no")


@dataclass(frozen=True)
class GDParts:
    """The three components produced by the GD transformation of one chunk.

    Attributes
    ----------
    prefix:
        The ``prefix_bits`` most-significant bits of the chunk, carried
        verbatim (0 when ``prefix_bits`` is 0).
    basis:
        The ``k``-bit basis (deduplication unit).
    deviation:
        The ``m``-bit syndrome identifying which bit of the chunk deviates
        from the basis' codeword (0 = none).
    prefix_bits, basis_bits, deviation_bits:
        Field widths, kept alongside the values so the parts are
        self-describing and can be reserialised without the transform.
    """

    prefix: int
    basis: int
    deviation: int
    prefix_bits: int
    basis_bits: int
    deviation_bits: int

    def __post_init__(self) -> None:
        if self.prefix < 0 or self.prefix >> self.prefix_bits:
            raise CodingError(
                f"prefix {self.prefix:#x} does not fit in {self.prefix_bits} bits"
            )
        if self.basis >> self.basis_bits:
            raise CodingError(
                f"basis {self.basis:#x} does not fit in {self.basis_bits} bits"
            )
        if self.deviation >> self.deviation_bits:
            raise CodingError(
                f"deviation {self.deviation:#x} does not fit in "
                f"{self.deviation_bits} bits"
            )

    @property
    def chunk_bits(self) -> int:
        """Total chunk width this decomposition corresponds to."""
        return self.prefix_bits + self.basis_bits + self.deviation_bits

    @property
    def dedup_key(self) -> int:
        """The value deduplicated across chunks: the basis.

        The prefix bits are carried verbatim in every packet (compressed or
        not), exactly like the paper's per-packet MSB bit, so they do not
        participate in deduplication.
        """
        return self.basis

    def basis_vector(self) -> BitVector:
        """The basis as a :class:`BitVector`."""
        return BitVector(self.basis, self.basis_bits)

    def deviation_vector(self) -> BitVector:
        """The deviation as a :class:`BitVector`."""
        return BitVector(self.deviation, self.deviation_bits)


class GDTransform:
    """Bijective mapping between chunks and (prefix, basis, deviation) parts.

    Parameters
    ----------
    order:
        Hamming order ``m``; the code has ``n = 2**m - 1`` and ``k = n - m``.
    chunk_bits:
        Total chunk width.  Must be at least ``n``; the default is the
        smallest byte-aligned width not below ``n`` (256 for ``m = 8``),
        matching the paper's configuration.
    polynomial:
        Optional generator polynomial override (full form, with leading
        term).  Defaults to the Table 1 entry for the order.
    fast:
        Selects the fused, table-driven fast path (the default).  Pass
        ``False`` to force the reference implementation — one checked layer
        per step — which the property tests compare the fast path against
        bit for bit.  ``None`` defers to the ``REPRO_GD_FAST`` environment
        variable (see :func:`fast_path_default`).
    backend:
        Codec backend for the batch entry points: a registered name
        (``"pure"``, ``"numpy"``, ``"native"``), a
        :class:`~repro.core.backends.CodecBackend` instance, or ``None``
        to follow the documented precedence (``REPRO_GD_BACKEND``, then
        the best available).  Accelerated backends only engage on the
        fast path and for configurations they support; everything else
        stays on the fused pure loop.  All backends are bit-identical.
    """

    def __init__(
        self,
        order: int = 8,
        chunk_bits: int | None = None,
        polynomial: int | None = None,
        fast: Optional[bool] = None,
        backend: "str | CodecBackend | None" = None,
    ):
        self._code = HammingCode(order, polynomial)
        n = self._code.n
        if chunk_bits is None:
            chunk_bits = n + padding_bits_for_alignment(n, 8)
        if chunk_bits < n:
            raise CodingError(
                f"chunk_bits={chunk_bits} is smaller than the code length n={n}"
            )
        self._chunk_bits = chunk_bits
        self._prefix_bits = chunk_bits - n
        self._fast = fast_path_default() if fast is None else bool(fast)
        self._backend = resolve_backend(backend)
        # Fused-path constants, bound once: the shared byte→remainder
        # closure, the syndrome→XOR-mask array, and the per-prefix syndrome
        # correction.  A whole chunk's remainder splits linearly as
        # ``syndrome(chunk) = syndrome(body) ^ syndrome(prefix << n)``, so
        # reducing the chunk's own bytes plus one table lookup recovers the
        # body syndrome without isolating (re-serialising) the body.
        self._body_mask = mask(n)
        self._remainder = self._code.byte_remainder
        self._error_masks = self._code.error_masks
        self._prefix_syndromes: Optional[Tuple[int, ...]] = None
        if self._fast and 0 < self._prefix_bits <= _MAX_PREFIX_TABLE_BITS:
            self._prefix_syndromes = prefix_syndrome_table(
                self._code.full_polynomial, n, self._prefix_bits
            )
        self._lanes: Optional[Tuple[bytes, ...]] = None  # built on first batch

    # -- accessors -----------------------------------------------------------

    @property
    def code(self) -> HammingCode:
        """The underlying Hamming code."""
        return self._code

    @property
    def order(self) -> int:
        """Hamming order ``m`` (deviation width)."""
        return self._code.m

    @property
    def chunk_bits(self) -> int:
        """Chunk width in bits (prefix + n)."""
        return self._chunk_bits

    @property
    def chunk_bytes(self) -> int:
        """Bytes needed to carry one chunk."""
        return bits_to_bytes_len(self._chunk_bits)

    @property
    def prefix_bits(self) -> int:
        """Verbatim prefix width in bits (chunk_bits - n)."""
        return self._prefix_bits

    @property
    def basis_bits(self) -> int:
        """Basis width ``k`` in bits."""
        return self._code.k

    @property
    def deviation_bits(self) -> int:
        """Deviation (syndrome) width ``m`` in bits."""
        return self._code.m

    @property
    def fast(self) -> bool:
        """True when the fused table-driven fast path is active."""
        return self._fast

    @property
    def backend(self) -> str:
        """Name of the resolved codec backend (``pure``/``numpy``/...)."""
        return self._backend.name

    @property
    def backend_impl(self) -> CodecBackend:
        """The resolved backend instance the batch entry points dispatch to."""
        return self._backend

    @property
    def uncompressed_bits(self) -> int:
        """Bits of a processed-but-uncompressed representation.

        prefix + basis + deviation — always equal to ``chunk_bits`` because
        the transformation is a bijection that adds no redundancy (the
        paper's "applying GD does not introduce additional bits").
        """
        return self._prefix_bits + self._code.k + self._code.m

    def __repr__(self) -> str:
        return (
            f"GDTransform(order={self.order}, chunk_bits={self._chunk_bits}, "
            f"n={self._code.n}, k={self._code.k})"
        )

    # -- input normalisation ----------------------------------------------------

    def _chunk_to_int(self, chunk: ChunkLike) -> int:
        if isinstance(chunk, BitVector):
            if chunk.width != self._chunk_bits:
                raise ChunkSizeError(
                    f"chunk width {chunk.width} does not match "
                    f"configured {self._chunk_bits} bits"
                )
            return chunk.value
        if isinstance(chunk, (bytes, bytearray, memoryview)):
            data = bytes(chunk)
            if len(data) != self.chunk_bytes:
                raise ChunkSizeError(
                    f"chunk of {len(data)} bytes does not match configured "
                    f"{self.chunk_bytes} bytes"
                )
            value = int.from_bytes(data, "big")
            if value >> self._chunk_bits:
                raise ChunkSizeError(
                    f"chunk value does not fit in {self._chunk_bits} bits"
                )
            return value
        if isinstance(chunk, int):
            if chunk < 0:
                raise ChunkSizeError(f"chunk must be non-negative, got {chunk}")
            if chunk >> self._chunk_bits:
                raise ChunkSizeError(
                    f"chunk {chunk:#x} does not fit in {self._chunk_bits} bits"
                )
            return chunk
        raise ChunkSizeError(f"unsupported chunk type {type(chunk).__name__}")

    # -- forward / inverse ---------------------------------------------------------

    def split(self, chunk: ChunkLike) -> GDParts:
        """Apply the GD transformation to one chunk (Figure 1, steps ➊–➎)."""
        value = self._chunk_to_int(chunk)
        prefix, basis, deviation = self._split_value(value)
        return GDParts(
            prefix=prefix,
            basis=basis,
            deviation=deviation,
            prefix_bits=self._prefix_bits,
            basis_bits=self._code.k,
            deviation_bits=self._code.m,
        )

    def split_fields(self, chunk: ChunkLike) -> GDFields:
        """Transform one chunk into plain ``(prefix, basis, deviation)`` ints.

        The allocation-free twin of :meth:`split`: no :class:`GDParts`
        object, no per-field width re-validation.  Input validation is the
        same as :meth:`split`.
        """
        return self._split_value(self._chunk_to_int(chunk))

    def _split_value(self, value: int) -> GDFields:
        """Fused (or reference) split of an already-validated chunk value."""
        n = self._code.n
        body = value & self._body_mask
        if not self._fast:
            basis, deviation = self._code.chunk_to_basis(body)
            return value >> n, basis, deviation
        deviation = self._remainder(
            body.to_bytes((n + 7) // 8, "big")
        )
        basis = (body ^ self._error_masks[deviation]) >> self._code.m
        return value >> n, basis, deviation

    def join(self, parts: GDParts) -> int:
        """Invert the GD transformation (Figure 2, steps ➌–➐)."""
        self._check_parts(parts)
        body = self._code.basis_to_chunk(parts.basis, parts.deviation)
        return (parts.prefix << self._code.n) | body

    def join_fields(self, prefix: int, basis: int, deviation: int) -> int:
        """Invert the transformation from raw field values."""
        parts = GDParts(
            prefix=prefix,
            basis=basis,
            deviation=deviation,
            prefix_bits=self._prefix_bits,
            basis_bits=self._code.k,
            deviation_bits=self._code.m,
        )
        return self.join(parts)

    def join_fields_fast(self, prefix: int, basis: int, deviation: int) -> int:
        """Fused, unchecked inverse: callers guarantee the field widths.

        The decode-direction hot path: parity bits through the shared CRC
        byte loop, one XOR-mask lookup to flip the deviated bit back.  Used
        by the batch decoder after it has validated record widths once per
        run; :meth:`join_fields` remains the checked entry point.  With
        ``fast=False`` it goes through the reference
        :meth:`~repro.core.hamming.HammingCode.basis_to_chunk` layer.
        """
        code = self._code
        if not self._fast:
            return (prefix << code.n) | code.basis_to_chunk(basis, deviation)
        codeword = (basis << code.m) | code.parity_of_basis_fast(basis)
        return (prefix << code.n) | (codeword ^ self._error_masks[deviation])

    def join_to_bytes(self, parts: GDParts) -> bytes:
        """Invert the transformation and serialise the chunk to bytes."""
        return int_to_bytes(self.join(parts), self._chunk_bits)

    def split_bytes(self, data: bytes) -> List[GDParts]:
        """Split a byte string into consecutive chunks and transform each.

        The data length must be an exact multiple of :attr:`chunk_bytes`;
        callers that need tail padding handle it at the framing layer (the
        trace generators always emit whole chunks, as in the paper).
        """
        return self.split_batch(data)

    def split_batch(self, data: "bytes | bytearray | memoryview") -> List[GDParts]:
        """Transform a contiguous buffer of whole chunks in one pass.

        Semantically equal to calling :meth:`split` on every
        :attr:`chunk_bytes`-sized slice, but running the fused field loop
        of :meth:`split_batch_fields` and wrapping each result once.
        """
        prefix_bits = self._prefix_bits
        k = self._code.k
        m = self._code.m
        return [
            GDParts(
                prefix=prefix,
                basis=basis,
                deviation=deviation,
                prefix_bits=prefix_bits,
                basis_bits=k,
                deviation_bits=m,
            )
            for prefix, basis, deviation in self.split_batch_fields(data)
        ]

    def split_batch_fields(
        self, data: "bytes | bytearray | memoryview"
    ) -> List[GDFields]:
        """The batch hot entry point: buffer of whole chunks → field triples.

        Dispatches to the configured codec backend: an accelerated backend
        (``numpy``) computes the whole buffer's syndromes, bases and
        deviations as ndarray operations; otherwise the fused pure loop of
        :meth:`_split_batch_fields_local` runs.  Batches shorter than
        :data:`~repro.core.backends.MIN_BATCH_CHUNKS`, configurations the
        backend does not support, and ``fast=False`` transforms always use
        the pure path.  Every backend is bit-identical, so callers never
        observe which one ran.
        """
        backend = self._backend
        if (
            backend.accelerated
            and self._fast
            and len(data) >= self.chunk_bytes * MIN_BATCH_CHUNKS
            and backend.supports_transform(self)
        ):
            return backend.split_batch_fields(self, data)
        return self._split_batch_fields_local(data)

    def split_batch_columns(
        self, data: "bytes | bytearray | memoryview"
    ) -> BatchSplit:
        """Whole-buffer split in the backend's columnar representation.

        Same dispatch rules as :meth:`split_batch_fields`, but the result
        stays in the producing backend's natural shape — for ``numpy``,
        parallel prefix/deviation arrays and a basis byte matrix — and the
        classic tuple list is materialised lazily via
        :meth:`BatchSplit.fields`.  This is the cheapest way to consume a
        whole trace when only column-level access is needed, and the shape
        the hot-path benchmark times per backend.
        """
        backend = self._backend
        if (
            backend.accelerated
            and self._fast
            and len(data) >= self.chunk_bytes * MIN_BATCH_CHUNKS
            and backend.supports_transform(self)
        ):
            return backend.split_batch_columns(self, data)
        return BatchSplit.from_fields(
            self._split_batch_fields_local(data), backend="pure"
        )

    def _split_batch_fields_local(
        self, data: "bytes | bytearray | memoryview"
    ) -> List[GDFields]:
        """The fused pure loop: buffer of whole chunks → list of field triples.

        One table-driven pass per chunk — ``int.from_bytes`` for the value,
        the shared CRC byte loop over the chunk's own bytes for the
        syndrome (corrected for the prefix bits by one lookup), one
        XOR-mask lookup for the codeword — with zero per-chunk object
        allocation.  ``data`` is sliced through a :class:`memoryview`, so
        callers can pass views of larger buffers without copying.

        With ``fast=False`` every chunk instead goes through the reference
        :meth:`~repro.core.hamming.HammingCode.chunk_to_basis` layer; the
        property suite asserts both paths agree bit for bit.
        """
        chunk_bytes = self.chunk_bytes
        total = len(data)
        if total % chunk_bytes:
            raise ChunkSizeError(
                f"data length {total} is not a multiple of the chunk size "
                f"{chunk_bytes}"
            )
        code = self._code
        n = code.n
        m = code.m
        chunk_bits = self._chunk_bits
        body_mask = self._body_mask
        from_bytes = int.from_bytes
        aligned = chunk_bits == chunk_bytes * 8
        view = memoryview(data)
        fields: List[GDFields] = []
        append = fields.append

        if not self._fast:
            chunk_to_basis = code.chunk_to_basis
            for offset in range(0, total, chunk_bytes):
                value = from_bytes(view[offset : offset + chunk_bytes], "big")
                if not aligned and value >> chunk_bits:
                    raise ChunkSizeError(
                        f"chunk value does not fit in {chunk_bits} bits"
                    )
                basis, deviation = chunk_to_basis(value & body_mask)
                append((value >> n, basis, deviation))
            return fields

        masks = self._error_masks
        prefix_syndromes = self._prefix_syndromes
        lane_eligible = m <= 8 and (
            self._prefix_bits == 0 or prefix_syndromes is not None
        )
        if lane_eligible and total:
            # Bulk lane pass: every chunk's raw-buffer syndrome at once, at
            # C speed — slice the buffer into its byte lanes, translate each
            # lane through its contribution table, XOR the lanes as big
            # integers.  The per-chunk Python work then collapses to one
            # ``int.from_bytes`` plus a handful of arithmetic ops.
            buf = data if isinstance(data, (bytes, bytearray)) else bytes(view)
            lanes = self._lanes
            if lanes is None:
                lanes = self._lanes = tuple(
                    lane_tables(self._code.crc_parameter, m, chunk_bytes)
                )
            accumulator = 0
            for position, lane_table in enumerate(lanes):
                accumulator ^= from_bytes(
                    buf[position::chunk_bytes].translate(lane_table), "big"
                )
            raw_syndromes = accumulator.to_bytes(total // chunk_bytes, "big")
            index = 0
            for offset in range(0, total, chunk_bytes):
                value = from_bytes(buf[offset : offset + chunk_bytes], "big")
                if not aligned and value >> chunk_bits:
                    raise ChunkSizeError(
                        f"chunk value does not fit in {chunk_bits} bits"
                    )
                prefix = value >> n
                deviation = raw_syndromes[index]
                index += 1
                if prefix:
                    # syndrome(chunk) = syndrome(body) ^ syndrome(prefix<<n)
                    deviation ^= prefix_syndromes[prefix]
                append(
                    (prefix, ((value & body_mask) ^ masks[deviation]) >> m, deviation)
                )
            return fields

        remainder = self._remainder
        body_bytes = (n + 7) // 8
        for offset in range(0, total, chunk_bytes):
            piece = view[offset : offset + chunk_bytes]
            value = from_bytes(piece, "big")
            if not aligned and value >> chunk_bits:
                raise ChunkSizeError(
                    f"chunk value does not fit in {chunk_bits} bits"
                )
            prefix = value >> n
            body = value & body_mask
            if prefix_syndromes is not None:
                deviation = remainder(piece) ^ prefix_syndromes[prefix]
            elif prefix:
                deviation = remainder(body.to_bytes(body_bytes, "big"))
            else:
                deviation = remainder(piece)
            append((prefix, (body ^ masks[deviation]) >> m, deviation))
        return fields

    def _join_batch_to_bytes_local(
        self,
        prefixes: "List[int]",
        bases: "List[int]",
        deviations: "List[int]",
    ) -> bytes:
        """Pure bulk inverse: resolved field columns → concatenated chunks.

        The decode-direction twin of :meth:`_split_batch_fields_local`:
        parity bits for the whole batch through the bulk lane reduction,
        then one combine + ``to_bytes`` per chunk.  Callers guarantee the
        field widths (the decoder validates records once per batch) and a
        byte-aligned ``chunk_bits``.
        """
        chunk_bytes = self.chunk_bytes
        code = self._code
        if not self._fast:
            join = self.join_fields_fast  # reference layer when fast=False
            return b"".join(
                join(prefixes[index], bases[index], deviations[index]).to_bytes(
                    chunk_bytes, "big"
                )
                for index in range(len(bases))
            )
        parities = code.parities_of_bases(bases)
        masks = self._error_masks
        m = code.m
        n = code.n
        pieces: List[bytes] = []
        append = pieces.append
        for index in range(len(bases)):
            codeword = (bases[index] << m) | parities[index]
            append(
                (
                    (prefixes[index] << n) | (codeword ^ masks[deviations[index]])
                ).to_bytes(chunk_bytes, "big")
            )
        return b"".join(pieces)

    def iter_split(self, chunks: Iterable[ChunkLike]) -> Iterator[GDParts]:
        """Lazily transform an iterable of chunks."""
        for chunk in chunks:
            yield self.split(chunk)

    def chunk_to_bytes(self, chunk: int) -> bytes:
        """Serialise an integer chunk into its byte representation."""
        return int_to_bytes(self._chunk_to_int(chunk), self._chunk_bits)

    # -- validation ---------------------------------------------------------------

    def _check_parts(self, parts: GDParts) -> None:
        if parts.prefix_bits != self._prefix_bits:
            raise CodingError(
                f"parts prefix width {parts.prefix_bits} does not match "
                f"transform prefix width {self._prefix_bits}"
            )
        if parts.basis_bits != self._code.k:
            raise CodingError(
                f"parts basis width {parts.basis_bits} does not match k={self._code.k}"
            )
        if parts.deviation_bits != self._code.m:
            raise CodingError(
                f"parts deviation width {parts.deviation_bits} does not match "
                f"m={self._code.m}"
            )
