"""Bit-level helpers used throughout the GD/Hamming/CRC implementation.

The coding-theory parts of ZipLine operate on bit sequences that are *not*
byte aligned (a Hamming(255, 247) basis is 247 bits long).  Python integers
are arbitrary precision, so the library represents every bit sequence as a
pair ``(value: int, width: int)`` with the most significant bit first
(``value`` bit ``width - 1`` is the coefficient of ``x**(width - 1)`` in the
polynomial view used by CRCs and Hamming codes).

This module provides conversions between integers, ``bytes``, bit strings and
bit lists, plus small utilities (bit extraction, popcount, padding math) that
the rest of :mod:`repro.core` builds on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.exceptions import CodingError

__all__ = [
    "BitVector",
    "bits_to_bytes_len",
    "bytes_to_int",
    "int_to_bytes",
    "bit_length_at_least",
    "mask",
    "extract_bits",
    "set_bit",
    "clear_bit",
    "flip_bit",
    "get_bit",
    "popcount",
    "popcount_portable",
    "iter_bits_msb",
    "bits_from_iterable",
    "bitstring_to_int",
    "int_to_bitstring",
    "align_up",
    "padding_bits_for_alignment",
    "HAS_INT_BIT_COUNT",
]

#: True when the running interpreter provides ``int.bit_count`` (3.10+); the
#: fast-path popcount uses it, older interpreters fall back to the portable
#: string-count implementation.
HAS_INT_BIT_COUNT = hasattr(int, "bit_count")


def mask(width: int) -> int:
    """Return an integer with the ``width`` least significant bits set."""
    if width < 0:
        raise CodingError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bits_to_bytes_len(n_bits: int) -> int:
    """Number of bytes needed to hold ``n_bits`` bits (ceiling division)."""
    if n_bits < 0:
        raise CodingError(f"bit count must be non-negative, got {n_bits}")
    return (n_bits + 7) // 8


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise CodingError(f"alignment must be positive, got {alignment}")
    if value < 0:
        raise CodingError(f"value must be non-negative, got {value}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def padding_bits_for_alignment(n_bits: int, alignment: int = 8) -> int:
    """Number of padding bits required to align ``n_bits`` to ``alignment``.

    Mirrors the Tofino byte-alignment constraint discussed in the paper's
    "Lessons learned" section: header fields must land on byte boundaries, so
    a 247-bit basis carried in a header costs one extra padding bit, and a
    255-bit chunk header costs one, etc.
    """
    return align_up(n_bits, alignment) - n_bits


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian (MSB-first) unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes(value: int, n_bits: int) -> bytes:
    """Serialise ``value`` as big-endian bytes covering ``n_bits`` bits.

    The output has ``ceil(n_bits / 8)`` bytes.  Raises :class:`CodingError`
    if ``value`` does not fit in ``n_bits`` bits.
    """
    if value < 0:
        raise CodingError(f"value must be non-negative, got {value}")
    if value >> n_bits:
        raise CodingError(f"value {value:#x} does not fit in {n_bits} bits")
    return value.to_bytes(bits_to_bytes_len(n_bits), "big")


def bit_length_at_least(value: int, minimum: int) -> int:
    """Return ``max(value.bit_length(), minimum)``."""
    return max(value.bit_length(), minimum)


def get_bit(value: int, position: int) -> int:
    """Return bit ``position`` (0 = least significant) of ``value``."""
    if position < 0:
        raise CodingError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def set_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` set."""
    if position < 0:
        raise CodingError(f"bit position must be non-negative, got {position}")
    return value | (1 << position)


def clear_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` cleared."""
    if position < 0:
        raise CodingError(f"bit position must be non-negative, got {position}")
    return value & ~(1 << position)


def flip_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` flipped (XOR with a unit mask)."""
    if position < 0:
        raise CodingError(f"bit position must be non-negative, got {position}")
    return value ^ (1 << position)


def extract_bits(value: int, high: int, low: int) -> int:
    """Extract the bit slice ``value[high:low]`` inclusive (P4-style slicing).

    ``high`` and ``low`` are bit positions with 0 as the least significant
    bit; the result is right-aligned.  Mirrors the P4 ``value[high:low]``
    slice operator used heavily in the ZipLine data-plane program.
    """
    if high < low:
        raise CodingError(f"invalid bit slice [{high}:{low}]")
    if low < 0:
        raise CodingError(f"bit positions must be non-negative, got low={low}")
    width = high - low + 1
    return (value >> low) & mask(width)


def popcount_portable(value: int) -> int:
    """Portable popcount (string count), kept as the pre-3.10 fallback.

    Also retained so the test suite can cross-check the ``int.bit_count``
    fast path against an independent implementation.
    """
    if value < 0:
        raise CodingError(f"popcount of negative value {value}")
    return bin(value).count("1")


if HAS_INT_BIT_COUNT:

    def popcount(value: int) -> int:
        """Number of set bits in ``value`` (Hamming weight)."""
        if value < 0:
            raise CodingError(f"popcount of negative value {value}")
        return value.bit_count()

else:  # pragma: no cover - exercised only on Python < 3.10
    popcount = popcount_portable


def iter_bits_msb(value: int, width: int) -> Iterator[int]:
    """Yield the bits of ``value`` most-significant first, ``width`` bits."""
    if value >> width:
        raise CodingError(f"value {value:#x} does not fit in {width} bits")
    for position in range(width - 1, -1, -1):
        yield (value >> position) & 1


def bits_from_iterable(bits: Iterable[int]) -> "BitVector":
    """Build a :class:`BitVector` from an iterable of 0/1 values (MSB first)."""
    bit_list = list(bits)
    value = 0
    for bit in bit_list:
        if bit not in (0, 1):
            raise CodingError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return BitVector(value, len(bit_list))


def bitstring_to_int(text: str) -> int:
    """Parse a string of '0'/'1' characters (MSB first) into an integer."""
    stripped = text.replace(" ", "").replace("_", "")
    if not stripped:
        return 0
    if any(char not in "01" for char in stripped):
        raise CodingError(f"invalid bit string {text!r}")
    return int(stripped, 2)


def int_to_bitstring(value: int, width: int) -> str:
    """Format ``value`` as a ``width``-character string of '0'/'1' (MSB first)."""
    if value >> width:
        raise CodingError(f"value {value:#x} does not fit in {width} bits")
    return format(value, f"0{width}b") if width else ""


class BitVector:
    """A fixed-width, immutable sequence of bits with MSB-first semantics.

    ``BitVector`` is a thin value type over ``(value, width)``.  It supports
    the operations the GD transformation needs: XOR, slicing, concatenation,
    conversion to/from bytes, and iteration over bits.  Instances are
    hashable so they can be used directly as dictionary keys (e.g. a basis
    used as a key in the compression dictionary).
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int):
        if width < 0:
            raise CodingError(f"width must be non-negative, got {width}")
        if value < 0:
            raise CodingError(f"value must be non-negative, got {value}")
        if value >> width:
            raise CodingError(f"value {value:#x} does not fit in {width} bits")
        self._value = value
        self._width = width

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, width: int | None = None) -> "BitVector":
        """Build a vector from big-endian bytes.

        When ``width`` is given and smaller than ``len(data) * 8``, the most
        significant bits are dropped (the data is right-aligned), matching
        how the data plane truncates byte-aligned containers down to
        non-aligned field widths.
        """
        total_bits = len(data) * 8
        value = bytes_to_int(data)
        if width is None:
            width = total_bits
        if width > total_bits:
            raise CodingError(
                f"requested width {width} exceeds available {total_bits} bits"
            )
        return cls(value & mask(width), width)

    @classmethod
    def from_bitstring(cls, text: str) -> "BitVector":
        """Build a vector from a string of '0'/'1' characters (MSB first)."""
        stripped = text.replace(" ", "").replace("_", "")
        return cls(bitstring_to_int(stripped), len(stripped))

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        """An all-zero vector of the given width."""
        return cls(0, width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """An all-one vector of the given width."""
        return cls(mask(width), width)

    @classmethod
    def unit(cls, position: int, width: int) -> "BitVector":
        """A vector of ``width`` bits with only bit ``position`` set."""
        if position >= width:
            raise CodingError(
                f"unit position {position} out of range for width {width}"
            )
        return cls(1 << position, width)

    # -- accessors ---------------------------------------------------------

    @property
    def value(self) -> int:
        """Integer value of the vector (bit ``width - 1`` is the MSB)."""
        return self._value

    @property
    def width(self) -> int:
        """Number of bits in the vector."""
        return self._width

    def bit(self, position: int) -> int:
        """Bit at ``position`` (0 = least significant)."""
        if position >= self._width:
            raise CodingError(
                f"bit position {position} out of range for width {self._width}"
            )
        return get_bit(self._value, position)

    def to_bytes(self) -> bytes:
        """Big-endian byte representation (``ceil(width / 8)`` bytes)."""
        return int_to_bytes(self._value, self._width)

    def to_bitstring(self) -> str:
        """'0'/'1' string, MSB first."""
        return int_to_bitstring(self._value, self._width)

    def to_bit_list(self) -> List[int]:
        """List of bits, MSB first."""
        return list(iter_bits_msb(self._value, self._width))

    def weight(self) -> int:
        """Hamming weight (number of set bits)."""
        return popcount(self._value)

    # -- operations --------------------------------------------------------

    def __xor__(self, other: "BitVector") -> "BitVector":
        if not isinstance(other, BitVector):
            return NotImplemented
        if other.width != self._width:
            raise CodingError(
                f"cannot XOR vectors of widths {self._width} and {other.width}"
            )
        return BitVector(self._value ^ other.value, self._width)

    def __and__(self, other: "BitVector") -> "BitVector":
        if not isinstance(other, BitVector):
            return NotImplemented
        if other.width != self._width:
            raise CodingError(
                f"cannot AND vectors of widths {self._width} and {other.width}"
            )
        return BitVector(self._value & other.value, self._width)

    def __or__(self, other: "BitVector") -> "BitVector":
        if not isinstance(other, BitVector):
            return NotImplemented
        if other.width != self._width:
            raise CodingError(
                f"cannot OR vectors of widths {self._width} and {other.width}"
            )
        return BitVector(self._value | other.value, self._width)

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenate ``self`` (high bits) with ``other`` (low bits).

        Mirrors the P4 ``++`` operator: ``a.concat(b)`` places ``a`` in the
        most significant positions.
        """
        return BitVector(
            (self._value << other.width) | other.value,
            self._width + other.width,
        )

    def slice(self, high: int, low: int) -> "BitVector":
        """Bit slice ``[high:low]`` inclusive, P4 style (0 = LSB)."""
        if high >= self._width:
            raise CodingError(
                f"slice high {high} out of range for width {self._width}"
            )
        return BitVector(extract_bits(self._value, high, low), high - low + 1)

    def truncate_low(self, width: int) -> "BitVector":
        """Keep only the ``width`` least significant bits."""
        if width > self._width:
            raise CodingError(
                f"cannot truncate width {self._width} vector to {width} bits"
            )
        return BitVector(self._value & mask(width), width)

    def truncate_high(self, width: int) -> "BitVector":
        """Keep only the ``width`` most significant bits."""
        if width > self._width:
            raise CodingError(
                f"cannot truncate width {self._width} vector to {width} bits"
            )
        return BitVector(self._value >> (self._width - width), width)

    def zero_extend(self, width: int) -> "BitVector":
        """Zero-extend to ``width`` bits (new zero bits become the MSBs)."""
        if width < self._width:
            raise CodingError(
                f"cannot zero-extend width {self._width} vector to {width} bits"
            )
        return BitVector(self._value, width)

    def flip(self, position: int) -> "BitVector":
        """Return a copy with bit ``position`` flipped."""
        if position >= self._width:
            raise CodingError(
                f"bit position {position} out of range for width {self._width}"
            )
        return BitVector(flip_bit(self._value, position), self._width)

    # -- dunder plumbing ----------------------------------------------------

    def __len__(self) -> int:
        return self._width

    def __iter__(self) -> Iterator[int]:
        return iter_bits_msb(self._value, self._width)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._value == other.value and self._width == other.width

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        if self._width <= 64:
            return f"BitVector('{self.to_bitstring()}')"
        return f"BitVector(value={self._value:#x}, width={self._width})"


def bit_vectors_equal(left: Sequence[BitVector], right: Sequence[BitVector]) -> bool:
    """True when two sequences of bit vectors are element-wise equal."""
    if len(left) != len(right):
        return False
    return all(a == b for a, b in zip(left, right))
