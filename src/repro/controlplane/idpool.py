"""Identifier pool management for the ZipLine control plane.

Section 5 of the paper: "the control plane chooses an identifier to assign
to the basis.  When there are unused identifiers, the control plane selects
the least recently used one.  Should all identifiers be in use, an LRU
policy is applied to evict and recycle an identifier."

:class:`IdentifierPool` implements exactly that allocation discipline for a
pool of ``2**t`` identifiers.  It tracks which identifiers are free, which
are bound to a basis, and the recency of every binding (refreshed when the
data plane reports activity through table idle-timeout polling).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.dictionary import decode_snapshot_key, encode_snapshot_key
from repro.exceptions import ControlPlaneError

__all__ = ["Allocation", "IdentifierPool"]


@dataclass(frozen=True)
class Allocation:
    """Result of allocating an identifier for a basis."""

    identifier: int
    evicted_basis: Optional[Hashable]
    recycled: bool


class IdentifierPool:
    """Bounded pool of identifiers with LRU recycling.

    Free identifiers are handed out lowest-first (which also means
    least-recently-released first, since released identifiers go to the back
    of the free list).  When none are free the least recently *active* bound
    identifier is recycled.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ControlPlaneError(f"pool capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._free: List[int] = list(range(capacity))
        # identifier -> basis, oldest activity first.
        self._bound: "OrderedDict[int, Hashable]" = OrderedDict()
        self._basis_to_id: Dict[Hashable, int] = {}
        self.allocations = 0
        self.recycles = 0

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of identifiers."""
        return self._capacity

    @property
    def free_count(self) -> int:
        """Identifiers currently unbound."""
        return len(self._free)

    @property
    def bound_count(self) -> int:
        """Identifiers currently bound to a basis."""
        return len(self._bound)

    def identifier_for(self, basis: Hashable) -> Optional[int]:
        """Identifier currently bound to ``basis``, or ``None``."""
        return self._basis_to_id.get(basis)

    def basis_for(self, identifier: int) -> Optional[Hashable]:
        """Basis currently bound to ``identifier``, or ``None``."""
        self._check_identifier(identifier)
        return self._bound.get(identifier)

    def bindings(self) -> Dict[int, Hashable]:
        """Copy of the identifier → basis map."""
        return dict(self._bound)

    def _check_identifier(self, identifier: int) -> None:
        if not 0 <= identifier < self._capacity:
            raise ControlPlaneError(
                f"identifier {identifier} out of range [0, {self._capacity})"
            )

    # -- allocation ----------------------------------------------------------

    def allocate(self, basis: Hashable) -> Allocation:
        """Bind ``basis`` to an identifier, recycling the LRU one if needed.

        Re-allocating an already-bound basis refreshes its recency and
        returns the existing identifier without recycling anything.
        """
        existing = self._basis_to_id.get(basis)
        if existing is not None:
            self._bound.move_to_end(existing)
            return Allocation(identifier=existing, evicted_basis=None, recycled=False)

        self.allocations += 1
        if self._free:
            identifier = self._free.pop(0)
            evicted: Optional[Hashable] = None
            recycled = False
        else:
            identifier, evicted = self._bound.popitem(last=False)
            del self._basis_to_id[evicted]
            self.recycles += 1
            recycled = True
        self._bound[identifier] = basis
        self._basis_to_id[basis] = identifier
        return Allocation(identifier=identifier, evicted_basis=evicted, recycled=recycled)

    def touch(self, identifier: int) -> None:
        """Refresh the recency of a bound identifier (data-plane activity)."""
        self._check_identifier(identifier)
        if identifier in self._bound:
            self._bound.move_to_end(identifier)

    def touch_basis(self, basis: Hashable) -> None:
        """Refresh recency given the basis instead of the identifier."""
        identifier = self._basis_to_id.get(basis)
        if identifier is not None:
            self._bound.move_to_end(identifier)

    def release(self, identifier: int) -> Optional[Hashable]:
        """Unbind an identifier and return it to the free list."""
        self._check_identifier(identifier)
        basis = self._bound.pop(identifier, None)
        if basis is None:
            return None
        del self._basis_to_id[basis]
        self._free.append(identifier)
        return basis

    def least_recently_used(self) -> Optional[Tuple[int, Hashable]]:
        """The binding that would be recycled next, or ``None`` when empty."""
        if not self._bound:
            return None
        identifier = next(iter(self._bound))
        return identifier, self._bound[identifier]

    def clear(self) -> None:
        """Release every binding."""
        self._bound.clear()
        self._basis_to_id.clear()
        self._free = list(range(self._capacity))

    # -- snapshot / restore ---------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Canonical, JSON-serialisable snapshot of the pool.

        Bindings are emitted in activity order (least recently active
        first), so a restored pool makes exactly the recycling decisions
        the original would have made.
        """
        return {
            "capacity": self._capacity,
            "free": list(self._free),
            "bound": [
                [identifier, encode_snapshot_key(basis)]
                for identifier, basis in self._bound.items()
            ],
            "allocations": self.allocations,
            "recycles": self.recycles,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Replace this pool's state with a snapshot's (same capacity only)."""
        if state.get("capacity") != self._capacity:
            raise ControlPlaneError(
                f"snapshot capacity {state.get('capacity')} does not match "
                f"pool capacity {self._capacity}"
            )
        bound: "OrderedDict[int, Hashable]" = OrderedDict()
        basis_to_id: Dict[Hashable, int] = {}
        for identifier, encoded_basis in state["bound"]:
            self._check_identifier(identifier)
            basis = decode_snapshot_key(encoded_basis)
            bound[identifier] = basis
            basis_to_id[basis] = identifier
        self._free = [int(identifier) for identifier in state["free"]]
        self._bound = bound
        self._basis_to_id = basis_to_id
        self.allocations = int(state.get("allocations", 0))
        self.recycles = int(state.get("recycles", 0))
