"""The ZipLine control plane: learn bases from digests, manage identifiers.

The control plane is the Python/BfRt component of the paper (Section 5).
Its responsibilities, reproduced here:

1. subscribe to the *learn* digests the encoding data plane emits when it
   meets an unknown basis;
2. pick an identifier for the basis — the least recently used free one, or
   recycle the LRU bound one when the pool is exhausted;
3. install the **reverse** (identifier → basis) mapping on the *decoding*
   switch first, so a compressed packet can never arrive before its mapping;
4. then install the **forward** (basis → identifier) mapping on the
   *encoding* switch, at which point subsequent packets with that basis are
   compressed;
5. recycle mappings whose table entries report an idle timeout (TTL).

Every step has an associated latency drawn from :class:`ControlPlaneTimings`;
the sum of the defaults reproduces the paper's measured
(1.77 ± 0.08) ms between the first type-2 and the first type-3 packet.

The manager talks to switches through a narrow duck-typed interface so it
does not depend on :mod:`repro.zipline`:

* encoder switch: ``install_basis_mapping(basis, identifier, ttl)``,
  ``remove_basis_mapping(basis)``, ``expired_bases(now)``;
* decoder switch: ``install_identifier_mapping(identifier, basis)``,
  ``remove_identifier_mapping(identifier)``.

Table mutations can optionally travel through a *transport* instead of a
direct method call: ``decoder_transport`` / ``encoder_transport`` receive
plain command dictionaries (``{"op": "install_identifier", ...}``) and are
responsible for applying them — e.g. a
:class:`repro.topology.control.ControlChannel` that carries them across an
emulated link with real latency.  Without transports the behaviour is the
original direct call, unchanged.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Set

from repro.controlplane.events import (
    DecoderMappingInstalled,
    DigestIgnored,
    DigestReceived,
    EncoderMappingInstalled,
    EventLog,
    MappingEvicted,
    MappingExpired,
)
from repro.controlplane.idpool import IdentifierPool
from repro.exceptions import ControlPlaneError
from repro.sim.simulator import Simulator
from repro.tofino.digest import DigestEngine, DigestMessage

__all__ = ["ControlPlaneTimings", "ControlPlaneStats", "ZipLineControlPlane"]


def _transport_accepts_callbacks(
    transport: Optional[Callable[..., None]],
) -> bool:
    """Whether ``transport`` takes the ``on_applied`` / ``on_drop`` kwargs.

    Plain callables (tests often pass a one-argument lambda) keep working:
    for them the manager invokes the callbacks itself, inline.
    """
    if transport is None:
        return False
    try:
        parameters = inspect.signature(transport).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return "on_applied" in parameters

#: Digest type emitted by the encoding data plane for unknown bases.
LEARN_DIGEST = "zipline_learn_basis"


@dataclass(frozen=True)
class ControlPlaneTimings:
    """Latency model of the control-plane path (seconds).

    The defaults, together with the digest delivery latency configured in
    :class:`~repro.tofino.digest.DigestEngine` (0.9 ms), sum to ≈ 1.77 ms:

    ``digest 0.90 ms + processing 0.27 ms + decoder write 0.30 ms +
    encoder write 0.30 ms = 1.77 ms``

    matching the paper's measured learning delay.  ``jitter_fraction`` adds
    a small uniformly distributed perturbation to each component so repeated
    measurements produce a realistic confidence interval (the paper reports
    ± 0.08 ms over 10 runs).
    """

    processing_latency: float = 0.27e-3
    table_write_latency: float = 0.30e-3
    idle_poll_interval: float = 50e-3
    jitter_fraction: float = 0.03

    def jittered(self, value: float, rng: random.Random) -> float:
        """Apply ± ``jitter_fraction`` uniform jitter to a latency value."""
        if self.jitter_fraction <= 0:
            return value
        spread = value * self.jitter_fraction
        return max(0.0, value + rng.uniform(-spread, spread))


@dataclass
class ControlPlaneStats:
    """Counters describing control-plane activity.

    ``resyncs`` / ``resync_installs`` / ``storm_evictions`` are the
    crash-recovery counters: how many decoder resynchronisations ran, how
    many install commands they re-issued, and how many bindings were
    force-evicted by injected eviction storms.  All three stay zero outside
    fault-injection runs.
    """

    digests_received: int = 0
    digests_ignored: int = 0
    mappings_learned: int = 0
    mappings_recycled: int = 0
    mappings_expired: int = 0
    resyncs: int = 0
    resync_installs: int = 0
    storm_evictions: int = 0
    installs_abandoned: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the reporting helpers.

        The recovery counters appear only once nonzero, so fault-free
        reports keep the exact counter set (and bytes) they always had.
        """
        data = {
            "digests_received": self.digests_received,
            "digests_ignored": self.digests_ignored,
            "mappings_learned": self.mappings_learned,
            "mappings_recycled": self.mappings_recycled,
            "mappings_expired": self.mappings_expired,
        }
        if self.resyncs:
            data["resyncs"] = self.resyncs
        if self.resync_installs:
            data["resync_installs"] = self.resync_installs
        if self.storm_evictions:
            data["storm_evictions"] = self.storm_evictions
        if self.installs_abandoned:
            data["installs_abandoned"] = self.installs_abandoned
        return data


class ZipLineControlPlane:
    """Manage basis ↔ identifier mappings across an encoder/decoder pair.

    Parameters
    ----------
    simulator:
        Shared simulator; used to model processing and table-write latency.
        When ``None`` everything happens synchronously (functional mode).
    encoder_switch / decoder_switch:
        Objects implementing the narrow interfaces documented in the module
        docstring.  Either may be ``None`` (e.g. a decode-only deployment).
    identifier_bits:
        Width of the identifier space (the paper uses 15 → 32,768 IDs).
    entry_ttl:
        TTL assigned to encoder-side entries; expired entries are recycled
        by the idle poll.  ``None`` disables expiry.
    timings:
        Control-plane latency model.
    seed:
        Seed for the latency jitter.
    decoder_transport / encoder_transport:
        Optional callables taking a command dictionary.  When set, table
        mutations for that switch are handed to the transport (which models
        an in-network control path) instead of being applied directly.
    """

    def __init__(
        self,
        digest_engine: DigestEngine,
        encoder_switch: Optional[object] = None,
        decoder_switch: Optional[object] = None,
        simulator: Optional[Simulator] = None,
        identifier_bits: int = 15,
        entry_ttl: Optional[float] = None,
        timings: Optional[ControlPlaneTimings] = None,
        seed: Optional[int] = None,
        decoder_transport: Optional[Callable[[Mapping[str, Any]], None]] = None,
        encoder_transport: Optional[Callable[[Mapping[str, Any]], None]] = None,
    ):
        if identifier_bits <= 0:
            raise ControlPlaneError("identifier_bits must be positive")
        self._digest_engine = digest_engine
        self._encoder_switch = encoder_switch
        self._decoder_switch = decoder_switch
        self._decoder_transport = decoder_transport
        self._decoder_transport_chains = _transport_accepts_callbacks(decoder_transport)
        self._encoder_transport = encoder_transport
        self._simulator = simulator
        self._pool = IdentifierPool(1 << identifier_bits)
        self._entry_ttl = entry_ttl
        self._timings = timings or ControlPlaneTimings()
        self._rng = random.Random(seed)
        self._pending: Set[Hashable] = set()
        self.stats = ControlPlaneStats()
        self.events = EventLog()
        digest_engine.subscribe(LEARN_DIGEST, self._on_learn_digest)
        if self._entry_ttl is not None and simulator is not None:
            self._schedule_idle_poll()

    # -- accessors ---------------------------------------------------------

    @property
    def pool(self) -> IdentifierPool:
        """The identifier pool."""
        return self._pool

    @property
    def timings(self) -> ControlPlaneTimings:
        """The latency model in use."""
        return self._timings

    @property
    def pending_installs(self) -> int:
        """Bases whose mappings are being installed right now."""
        return len(self._pending)

    def _now(self) -> float:
        return self._simulator.now if self._simulator is not None else 0.0

    # -- switch command routing ---------------------------------------------

    def _decoder_command(
        self,
        command: Mapping[str, Any],
        on_applied: Optional[Callable[[], None]] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        """Apply (or transport) one decoder-side table command.

        ``on_applied`` runs once the write has completed on the decoder
        (the acked-write model) and ``on_drop`` runs instead when the
        transport reports the write failed — rejected by a bounded
        install queue or lost on the control wire.  With a direct switch —
        or a transport that does not take the callbacks — the write is
        synchronous, so ``on_applied`` runs inline.
        """
        if self._decoder_transport is not None:
            if self._decoder_transport_chains:
                self._decoder_transport(
                    command, on_applied=on_applied, on_drop=on_drop
                )
                return
            self._decoder_transport(command)
        elif command["op"] == "install_identifier":
            self._decoder_switch.install_identifier_mapping(
                command["identifier"], command["basis"]
            )
        else:
            self._decoder_switch.remove_identifier_mapping(command["identifier"])
        if on_applied is not None:
            on_applied()

    def _encoder_command(self, command: Mapping[str, Any]) -> None:
        """Apply (or transport) one encoder-side table command."""
        if self._encoder_transport is not None:
            self._encoder_transport(command)
        elif command["op"] == "install_basis":
            self._encoder_switch.install_basis_mapping(
                command["basis"], command["identifier"], command.get("ttl")
            )
        else:
            self._encoder_switch.remove_basis_mapping(command["basis"])

    # -- digest handling -----------------------------------------------------

    def _on_learn_digest(self, message: DigestMessage) -> None:
        """Handle one learn digest from the encoding data plane."""
        basis = message.data.get("basis")
        if basis is None:
            raise ControlPlaneError("learn digest without a 'basis' field")
        now = self._now()
        self.stats.digests_received += 1
        self.events.append(DigestReceived(time=now, basis=basis))

        if self._pool.identifier_for(basis) is not None:
            self.stats.digests_ignored += 1
            self.events.append(
                DigestIgnored(time=now, basis=basis, reason="already mapped")
            )
            return
        if basis in self._pending:
            self.stats.digests_ignored += 1
            self.events.append(
                DigestIgnored(time=now, basis=basis, reason="install pending")
            )
            return

        self._pending.add(basis)
        processing = self._timings.jittered(self._timings.processing_latency, self._rng)
        self._after(processing, lambda: self._allocate_and_install(basis))

    def _allocate_and_install(self, basis: Hashable) -> None:
        """Pick an identifier (recycling if needed) and start the installs."""
        allocation = self._pool.allocate(basis)
        now = self._now()
        if allocation.recycled and allocation.evicted_basis is not None:
            self.stats.mappings_recycled += 1
            self.events.append(
                MappingEvicted(
                    time=now,
                    identifier=allocation.identifier,
                    basis=allocation.evicted_basis,
                )
            )
            if self._encoder_switch is not None:
                self._encoder_command(
                    {"op": "remove_basis", "basis": allocation.evicted_basis}
                )
            if self._decoder_switch is not None:
                self._decoder_command(
                    {"op": "remove_identifier", "identifier": allocation.identifier}
                )

        write_latency = self._timings.jittered(
            self._timings.table_write_latency, self._rng
        )
        self._after(
            write_latency,
            lambda: self._install_decoder_side(basis, allocation.identifier),
        )

    def _abandon_if_stale(self, basis: Hashable, identifier: int) -> bool:
        """True when ``basis``'s binding was recycled away mid-install.

        Installs take two table-write latencies; under heavy churn the LRU
        policy can evict a binding *before* its installs land.  The recycle
        issues removes immediately — which no-op against entries that do
        not exist yet — so finishing the in-flight install would resurrect
        a stale entry the pool no longer tracks (the encoder table then
        leaks entries until it overflows, and a stale identifier can even
        decode to the wrong basis).  Abandoning the install keeps the
        switches exact mirrors of the pool.
        """
        if self._pool.identifier_for(basis) == identifier:
            return False
        self._pending.discard(basis)
        self.stats.installs_abandoned += 1
        self.events.append(
            MappingEvicted(time=self._now(), identifier=identifier, basis=basis)
        )
        return True

    def _install_decoder_side(self, basis: Hashable, identifier: int) -> None:
        """Install the reverse mapping, then schedule the forward mapping.

        The encoder-side install is chained off the decoder write being
        *applied* (acknowledged), not off this call: a rate-limited
        control channel that parks the command in its install queue must
        delay compression activation, and a command lost on the control
        wire must roll the allocation back — activating the encoder while
        the decoder cannot decode would break the decoder-first install
        discipline, and on a recycled identifier it would silently decode
        the reused identifier with the stale basis.
        """
        if self._abandon_if_stale(basis, identifier):
            return
        now = self._now()

        def proceed() -> None:
            write_latency = self._timings.jittered(
                self._timings.table_write_latency, self._rng
            )
            self._after(
                write_latency,
                lambda: self._install_encoder_side(basis, identifier),
            )

        def dropped() -> None:
            # The install never reached the decoder: roll the allocation
            # back so a later digest for this basis can retry from scratch.
            if self._pool.identifier_for(basis) == identifier:
                self._pool.release(identifier)
            self._pending.discard(basis)
            self.stats.installs_abandoned += 1
            self.events.append(
                MappingEvicted(time=self._now(), identifier=identifier, basis=basis)
            )

        if self._decoder_switch is not None:
            self._decoder_command(
                {"op": "install_identifier", "identifier": identifier, "basis": basis},
                on_applied=proceed,
                on_drop=dropped,
            )
        else:
            proceed()
        self.events.append(
            DecoderMappingInstalled(time=now, identifier=identifier, basis=basis)
        )

    def _install_encoder_side(self, basis: Hashable, identifier: int) -> None:
        """Install the forward mapping; compression starts after this point."""
        if self._abandon_if_stale(basis, identifier):
            return
        now = self._now()
        if self._encoder_switch is not None:
            self._encoder_command(
                {
                    "op": "install_basis",
                    "basis": basis,
                    "identifier": identifier,
                    "ttl": self._entry_ttl,
                }
            )
        self._pending.discard(basis)
        self.stats.mappings_learned += 1
        self.events.append(
            EncoderMappingInstalled(time=now, identifier=identifier, basis=basis)
        )

    # -- idle timeout handling ---------------------------------------------------

    def _schedule_idle_poll(self) -> None:
        if self._simulator is None:
            return
        self._simulator.schedule_in(
            self._timings.idle_poll_interval,
            self._idle_poll,
            description="control-plane idle poll",
        )

    def _idle_poll(self) -> None:
        """Recycle mappings whose encoder-side entries report idle timeout."""
        now = self._now()
        if self._encoder_switch is not None and hasattr(self._encoder_switch, "expired_bases"):
            for basis in self._encoder_switch.expired_bases(now):
                identifier = self._pool.identifier_for(basis)
                if identifier is None:
                    continue
                self._pool.release(identifier)
                self._encoder_command({"op": "remove_basis", "basis": basis})
                if self._decoder_switch is not None:
                    self._decoder_command(
                        {"op": "remove_identifier", "identifier": identifier}
                    )
                self.stats.mappings_expired += 1
                self.events.append(
                    MappingExpired(time=now, identifier=identifier, basis=basis)
                )
        self._schedule_idle_poll()

    # -- plumbing ---------------------------------------------------------------------

    def _after(self, delay: float, callback) -> None:
        """Run ``callback`` after ``delay`` seconds (immediately without a simulator)."""
        if self._simulator is None:
            callback()
        else:
            self._simulator.schedule_in(delay, callback, description="control-plane step")

    # -- crash recovery ---------------------------------------------------------------

    def resync_decoder(self) -> int:
        """Reinstall every known identifier → basis mapping on the decoder.

        This is the recovery path for a decoder that lost its table state
        (e.g. a mid-trace restart): the control plane is the authoritative
        copy of the bindings, so it replays one ``install_identifier``
        command per binding — through the configured transport, which means
        resync traffic competes for the same rate-limited, possibly lossy
        control channel as regular installs.  Commands are marked
        ``resync`` so the channel can account recovery traffic separately.
        Returns the number of install commands issued.
        """
        bindings = self._pool.bindings()
        for identifier, basis in bindings.items():
            self._decoder_command(
                {
                    "op": "install_identifier",
                    "identifier": identifier,
                    "basis": basis,
                    "resync": True,
                }
            )
        self.stats.resyncs += 1
        self.stats.resync_installs += len(bindings)
        return len(bindings)

    def force_evict(self, count: int) -> int:
        """Forcibly evict up to ``count`` LRU bindings (an eviction storm).

        Models operator-driven or bug-driven table churn: the least
        recently used bindings are released and remove commands are sent to
        both switches, so the data plane immediately falls back to type-2
        records for those bases until they are re-learned.  Returns the
        number of bindings actually evicted.
        """
        if count < 0:
            raise ControlPlaneError(f"eviction count cannot be negative, got {count}")
        evicted = 0
        now = self._now()
        for _ in range(count):
            binding = self._pool.least_recently_used()
            if binding is None:
                break
            identifier, basis = binding
            self._pool.release(identifier)
            if self._encoder_switch is not None or self._encoder_transport is not None:
                self._encoder_command({"op": "remove_basis", "basis": basis})
            if self._decoder_switch is not None or self._decoder_transport is not None:
                self._decoder_command(
                    {"op": "remove_identifier", "identifier": identifier}
                )
            self.stats.storm_evictions += 1
            self.events.append(
                MappingEvicted(time=now, identifier=identifier, basis=basis)
            )
            evicted += 1
        return evicted

    # -- snapshot / restore -------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Canonical, JSON-serialisable snapshot of the mapping authority.

        Captures the identifier pool (bindings in recency order plus the
        free list) and the set of bases whose installs are still in flight.
        Event logs, latency state and counters are deliberately excluded —
        they describe the past, not the mapping state a restarted control
        plane needs.
        """
        from repro.core.dictionary import encode_snapshot_key

        return {
            "pool": self._pool.snapshot_state(),
            "pending": [
                encode_snapshot_key(basis)
                for basis in sorted(self._pending, key=repr)
            ],
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Replace the pool and pending-install set with a snapshot's."""
        from repro.core.dictionary import decode_snapshot_key

        self._pool.restore_state(state["pool"])
        self._pending = {
            decode_snapshot_key(basis) for basis in state.get("pending", [])
        }

    # -- manual management (static tables) ----------------------------------------------

    def preload_static_mappings(self, bases) -> int:
        """Install mappings for an iterable of bases with no latency.

        This is the paper's *static table* scenario: the mappings are added
        before the experiment starts.  Returns the number installed.
        """
        count = 0
        for basis in bases:
            if self._pool.identifier_for(basis) is not None:
                continue
            allocation = self._pool.allocate(basis)
            if self._decoder_switch is not None:
                self._decoder_switch.install_identifier_mapping(
                    allocation.identifier, basis
                )
            if self._encoder_switch is not None:
                self._encoder_switch.install_basis_mapping(
                    basis, allocation.identifier, self._entry_ttl
                )
            count += 1
        return count
