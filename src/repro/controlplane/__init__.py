"""ZipLine control plane: digest handling, identifier pool, LRU recycling."""

from repro.controlplane.events import (
    ControlPlaneEvent,
    DecoderMappingInstalled,
    DigestIgnored,
    DigestReceived,
    EncoderMappingInstalled,
    EventLog,
    MappingEvicted,
    MappingExpired,
)
from repro.controlplane.idpool import Allocation, IdentifierPool
from repro.controlplane.manager import (
    LEARN_DIGEST,
    ControlPlaneStats,
    ControlPlaneTimings,
    ZipLineControlPlane,
)

__all__ = [
    "ControlPlaneEvent",
    "DecoderMappingInstalled",
    "DigestIgnored",
    "DigestReceived",
    "EncoderMappingInstalled",
    "EventLog",
    "MappingEvicted",
    "MappingExpired",
    "Allocation",
    "IdentifierPool",
    "LEARN_DIGEST",
    "ControlPlaneStats",
    "ControlPlaneTimings",
    "ZipLineControlPlane",
]
