"""Structured event log for the ZipLine control plane.

The control plane records what it does (mappings learned, evictions,
ignored digests) as typed events with timestamps.  The dynamic-learning
experiment and several tests read this log to verify sequencing — e.g. that
the reverse (decoder-side) mapping is always installed before the forward
(encoder-side) mapping, as Section 5 of the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Type, TypeVar

__all__ = [
    "ControlPlaneEvent",
    "DigestReceived",
    "DigestIgnored",
    "MappingEvicted",
    "DecoderMappingInstalled",
    "EncoderMappingInstalled",
    "MappingExpired",
    "EventLog",
]


@dataclass(frozen=True)
class ControlPlaneEvent:
    """Base class: every event has a timestamp (simulated seconds)."""

    time: float


@dataclass(frozen=True)
class DigestReceived(ControlPlaneEvent):
    """A learn digest reached the control plane."""

    basis: Hashable = None


@dataclass(frozen=True)
class DigestIgnored(ControlPlaneEvent):
    """A digest was ignored (basis already mapped or install pending)."""

    basis: Hashable = None
    reason: str = ""


@dataclass(frozen=True)
class MappingEvicted(ControlPlaneEvent):
    """An identifier was recycled away from a basis."""

    identifier: int = -1
    basis: Hashable = None


@dataclass(frozen=True)
class DecoderMappingInstalled(ControlPlaneEvent):
    """The reverse (identifier → basis) entry became active in the decoder."""

    identifier: int = -1
    basis: Hashable = None


@dataclass(frozen=True)
class EncoderMappingInstalled(ControlPlaneEvent):
    """The forward (basis → identifier) entry became active in the encoder."""

    identifier: int = -1
    basis: Hashable = None


@dataclass(frozen=True)
class MappingExpired(ControlPlaneEvent):
    """An idle-timeout sweep removed a stale mapping."""

    identifier: int = -1
    basis: Hashable = None


EventT = TypeVar("EventT", bound=ControlPlaneEvent)


class EventLog:
    """An append-only, queryable list of control-plane events."""

    def __init__(self) -> None:
        self._events: List[ControlPlaneEvent] = []

    def append(self, event: ControlPlaneEvent) -> None:
        """Record one event."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ControlPlaneEvent]:
        return iter(list(self._events))

    def of_type(self, event_type: Type[EventT]) -> List[EventT]:
        """Every recorded event of the given type, in order."""
        return [event for event in self._events if isinstance(event, event_type)]

    def last_of_type(self, event_type: Type[EventT]) -> Optional[EventT]:
        """Most recent event of the given type, or ``None``."""
        events = self.of_type(event_type)
        return events[-1] if events else None

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()
